package txstruct

import (
	"math/bits"

	"repro/internal/core"
	"repro/internal/intset"
)

// skipMaxLevel bounds tower heights; 2^16 expected elements is far beyond
// the Collection benchmark sizes.
const skipMaxLevel = 16

// snode is one skip-list node: an immutable value and one typed next-cell
// per level (each holding the successor *snode), so tower traversals carry
// node pointers without interface boxing or type assertions.
type snode struct {
	val  int
	next []*core.TypedCell[*snode]
}

// SkipList is a transactional skip list integer set.
//
// Parse operations run as classic transactions: a skip-list update writes
// predecessor pointers at several levels that were read arbitrarily far
// apart, which the elastic window cannot cover (the list's window
// argument does not transfer), so the elastic label is deliberately not
// offered. Size and Elements run under the configured read-only
// semantics (Snapshot by default) and therefore neither abort nor block
// updates — mixing semantics across *structures* is the point of the
// polymorphic runtime.
type SkipList struct {
	tm      *core.TM
	sizeSem core.Semantics
	head    *snode // sentinel tower; head.next[l] holds the first node at level l
}

var (
	_ intset.Set         = (*SkipList)(nil)
	_ intset.Snapshotter = (*SkipList)(nil)
)

// NewSkipList builds an empty skip list; sizeSem selects the semantics of
// Size/Elements (0 defaults to Snapshot).
func NewSkipList(tm *core.TM, sizeSem core.Semantics) *SkipList {
	if sizeSem == 0 {
		sizeSem = core.Snapshot
	}
	head := &snode{val: 0, next: make([]*core.TypedCell[*snode], skipMaxLevel)}
	for i := range head.next {
		head.next[i] = core.NewTypedCell[*snode](tm, nil)
	}
	return &SkipList{tm: tm, sizeSem: sizeSem, head: head}
}

// levelOf derives a deterministic tower height from the value: the number
// of trailing ones of a mixed hash, the usual p=1/2 geometric
// distribution but reproducible across runs (no shared RNG state to
// contend on).
func levelOf(v int) int {
	x := uint64(v)*0x9e3779b97f4a7c15 + 0x517cc1b727220a95
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	h := bits.TrailingZeros64(x|1<<skipMaxLevel) + 1
	if h > skipMaxLevel {
		h = skipMaxLevel
	}
	return h
}

// findTx fills preds/succs: preds[l] is the last node at level l with
// value < v (possibly the head sentinel), succs[l] its successor.
func (s *SkipList) findTx(tx *core.Tx, v int, preds []*snode, succs []*snode) {
	pred := s.head
	for l := skipMaxLevel - 1; l >= 0; l-- {
		curr := pred.next[l].Load(tx)
		for curr != nil && curr.val < v {
			pred = curr
			curr = pred.next[l].Load(tx)
		}
		preds[l] = pred
		succs[l] = curr
	}
}

// ContainsTx reports membership inside the caller's transaction.
func (s *SkipList) ContainsTx(tx *core.Tx, v int) bool {
	pred := s.head
	for l := skipMaxLevel - 1; l >= 0; l-- {
		curr := pred.next[l].Load(tx)
		for curr != nil && curr.val < v {
			pred = curr
			curr = pred.next[l].Load(tx)
		}
		if curr != nil && curr.val == v {
			return true
		}
	}
	return false
}

// AddTx inserts v inside the caller's transaction.
func (s *SkipList) AddTx(tx *core.Tx, v int) bool {
	var preds, succs [skipMaxLevel]*snode
	s.findTx(tx, v, preds[:], succs[:])
	if succs[0] != nil && succs[0].val == v {
		return false
	}
	h := levelOf(v)
	n := &snode{val: v, next: make([]*core.TypedCell[*snode], h)}
	for l := 0; l < h; l++ {
		n.next[l] = core.NewTypedCell(s.tm, succs[l])
	}
	for l := 0; l < h; l++ {
		preds[l].next[l].Store(tx, n)
	}
	return true
}

// RemoveTx deletes v inside the caller's transaction.
func (s *SkipList) RemoveTx(tx *core.Tx, v int) bool {
	var preds, succs [skipMaxLevel]*snode
	s.findTx(tx, v, preds[:], succs[:])
	victim := succs[0]
	if victim == nil || victim.val != v {
		return false
	}
	for l := 0; l < len(victim.next); l++ {
		succ := victim.next[l].Load(tx)
		preds[l].next[l].Store(tx, succ)
		// Republish the victim's pointer (version bump) so concurrent
		// parses resting on the unlinked node conflict, mirroring the
		// linked list's removal discipline.
		victim.next[l].Store(tx, succ)
	}
	return true
}

// SizeTx counts the elements (bottom level) inside the caller's
// transaction.
func (s *SkipList) SizeTx(tx *core.Tx) int {
	n := 0
	for curr := s.head.next[0].Load(tx); curr != nil; curr = curr.next[0].Load(tx) {
		n++
	}
	return n
}

// ElementsTx returns the members ascending inside the caller's
// transaction.
func (s *SkipList) ElementsTx(tx *core.Tx) []int {
	var out []int
	for curr := s.head.next[0].Load(tx); curr != nil; curr = curr.next[0].Load(tx) {
		out = append(out, curr.val)
	}
	return out
}

// SnapshotRange visits members with lo <= v <= hi in ascending order at
// the pin's version (bottom level walk), mirroring List.SnapshotRange: a
// consistent cut frozen at pin time with zero write-path interference.
// Each call is one snapshot transaction and may retry: fn must tolerate
// re-invocation from the first member (see TreeMapOf.SnapshotRange).
func (s *SkipList) SnapshotRange(p *core.SnapshotPin, lo, hi int, fn func(v int) bool) error {
	return p.Atomically(func(tx *core.Tx) error {
		for curr := s.head.next[0].Load(tx); curr != nil && curr.val <= hi; curr = curr.next[0].Load(tx) {
			if curr.val >= lo && !fn(curr.val) {
				return nil
			}
		}
		return nil
	})
}

// Contains implements intset.Set.
func (s *SkipList) Contains(v int) (bool, error) {
	var found bool
	err := s.tm.Atomically(core.Classic, func(tx *core.Tx) error {
		found = s.ContainsTx(tx, v)
		return nil
	})
	return found, err
}

// Add implements intset.Set.
func (s *SkipList) Add(v int) (bool, error) {
	var added bool
	err := s.tm.Atomically(core.Classic, func(tx *core.Tx) error {
		added = s.AddTx(tx, v)
		return nil
	})
	return added, err
}

// Remove implements intset.Set.
func (s *SkipList) Remove(v int) (bool, error) {
	var removed bool
	err := s.tm.Atomically(core.Classic, func(tx *core.Tx) error {
		removed = s.RemoveTx(tx, v)
		return nil
	})
	return removed, err
}

// Size implements intset.Set under the configured read-only semantics.
func (s *SkipList) Size() (int, error) {
	var n int
	err := s.tm.Atomically(s.sizeSem, func(tx *core.Tx) error {
		n = s.SizeTx(tx)
		return nil
	})
	return n, err
}

// Elements implements intset.Snapshotter.
func (s *SkipList) Elements() ([]int, error) {
	var out []int
	err := s.tm.Atomically(s.sizeSem, func(tx *core.Tx) error {
		out = s.ElementsTx(tx)
		return nil
	})
	return out, err
}
