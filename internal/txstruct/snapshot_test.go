package txstruct

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// TestTreeMapSnapshotRangeConsistentUnderCommitters is the acceptance
// fence for pinned iteration: a SnapshotRange over a pinned version must
// return exactly the bindings committed at pin time — across MANY
// successive range transactions on one pin — while 8+ committers mutate
// the tree. The committers preserve an invariant (they only insert/delete
// keys outside the pinned key space and rebalance freely through it), and
// the pinned keys carry a checksum value, so a walk mixing versions is
// caught by value, by membership and by order. Run with -race: the tree's
// typed node cells recycle version records, and the pinned walk must
// never observe one mid-rewrite.
func TestTreeMapSnapshotRangeConsistentUnderCommitters(t *testing.T) {
	const (
		pinnedKeys = 64
		committers = 8
		rangeTxs   = 120
	)
	tm := core.New()
	m := NewTreeMapOf[int](tm, core.Snapshot)
	// Committed base state: even keys 0..2*pinnedKeys with val = 1000+key.
	if err := tm.Atomically(core.Classic, func(tx *core.Tx) error {
		for k := 0; k < pinnedKeys; k++ {
			m.PutTx(tx, 2*k, 1000+2*k)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	pin, err := tm.PinSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer pin.Release()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < committers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w)*0x9e3779b97f4a7c15 + 1
			for i := 0; !stop.Load(); i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				odd := 1 + 2*int(rng%uint64(4*pinnedKeys))
				_ = tm.Atomically(core.Classic, func(tx *core.Tx) error {
					if i%3 == 0 {
						m.DeleteTx(tx, odd)
					} else {
						m.PutTx(tx, odd, i)
					}
					// Churn a pinned key's value too: overwrites must stay
					// invisible at the pinned version.
					m.PutTx(tx, 2*int(rng%pinnedKeys), -1)
					return nil
				})
			}
		}(w)
	}

	for i := 0; i < rangeTxs && !t.Failed(); i++ {
		// SnapshotRange's fn may re-run if the snapshot transaction
		// retries (documented contract), so the accumulator is a map —
		// idempotent under re-invocation.
		got := make(map[int]int)
		if err := m.SnapshotRange(pin, 0, math.MaxInt, func(k, v int) bool {
			got[k] = v
			return true
		}); err != nil {
			t.Errorf("range tx %d: %v", i, err)
			break
		}
		if len(got) != pinnedKeys {
			t.Errorf("range tx %d saw %d keys, want %d", i, len(got), pinnedKeys)
			break
		}
		for j := 0; j < pinnedKeys; j++ {
			if v, ok := got[2*j]; !ok || v != 1000+2*j {
				t.Errorf("range tx %d key %d = (%d,%v), want (%d,true)", i, 2*j, v, ok, 1000+2*j)
				break
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	if n := tm.Stats().Aborts[core.AbortSnapshotTooOld]; n != 0 {
		t.Fatalf("pinned ranges lost their version %d time(s)", n)
	}
}

// TestListAndSkipListSnapshotRange pins a version of each set, mutates,
// and checks the pinned range walks the frozen membership while a live
// snapshot sees the new one.
func TestListAndSkipListSnapshotRange(t *testing.T) {
	type rangeSet interface {
		AddTx(*core.Tx, int) bool
		RemoveTx(*core.Tx, int) bool
		SnapshotRange(*core.SnapshotPin, int, int, func(int) bool) error
	}
	tm := core.New()
	for name, s := range map[string]rangeSet{
		"linkedlist": NewList(tm, ListConfig{}),
		"skiplist":   NewSkipList(tm, core.Snapshot),
	} {
		t.Run(name, func(t *testing.T) {
			if err := tm.Atomically(core.Classic, func(tx *core.Tx) error {
				for _, v := range []int{1, 3, 5, 7, 9} {
					s.AddTx(tx, v)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			pin, err := tm.PinSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			defer pin.Release()
			if err := tm.Atomically(core.Classic, func(tx *core.Tx) error {
				s.RemoveTx(tx, 5)
				s.AddTx(tx, 4)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			var got []int
			if err := s.SnapshotRange(pin, 2, 8, func(v int) bool {
				got = append(got, v)
				return true
			}); err != nil {
				t.Fatal(err)
			}
			want := []int{3, 5, 7}
			if len(got) != len(want) {
				t.Fatalf("pinned range = %v, want %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("pinned range = %v, want %v", got, want)
				}
			}
			// Early stop.
			var first []int
			if err := s.SnapshotRange(pin, 0, 100, func(v int) bool {
				first = append(first, v)
				return len(first) < 2
			}); err != nil {
				t.Fatal(err)
			}
			if len(first) != 2 {
				t.Fatalf("early-stopped range returned %v, want 2 members", first)
			}
		})
	}
}

// TestTreeMapReplaceAllTx checks the copy-on-write restore primitive: the
// map's contents are replaced wholesale, the tree invariants hold, and a
// reader pinned to the pre-restore version keeps seeing the old contents.
func TestTreeMapReplaceAllTx(t *testing.T) {
	tm := core.New()
	m := NewTreeMapOf[int](tm, core.Snapshot)
	for k := 0; k < 40; k++ {
		if _, err := m.Put(k, k*10); err != nil {
			t.Fatal(err)
		}
	}
	pin, err := tm.PinSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer pin.Release()

	keys := []int{5, 17, 99}
	vals := []int{50, 170, 990}
	if err := tm.Atomically(core.Classic, func(tx *core.Tx) error {
		m.ReplaceAllTx(tx, keys, vals)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	got, err := m.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 5 || got[1] != 17 || got[2] != 99 {
		t.Fatalf("restored keys = %v, want [5 17 99]", got)
	}
	if err := tm.Atomically(core.Classic, func(tx *core.Tx) error {
		if _, err := m.checkInvariants(tx); err != nil {
			t.Errorf("invariants after restore: %v", err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// The pinned reader still walks the pre-restore tree.
	n := 0
	if err := m.SnapshotAscend(pin, func(k, v int) bool {
		if v != k*10 {
			t.Errorf("pinned read of key %d = %d, want %d", k, v, k*10)
		}
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != 40 {
		t.Fatalf("pinned ascend saw %d bindings, want 40", n)
	}
}
