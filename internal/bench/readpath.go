package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/txstruct"
)

// This file is the privatization read-path sweep: the same prepopulated
// ordered map read three ways — classic transactions (full STM tax:
// per-read version sampling and commit-time validation), snapshot-pinned
// transactions (no validation, but still a transaction per batch of
// reads with multi-version lookups), and privatized plain reads (the
// structure detached behind the quiescence barrier, every lookup a bare
// pointer walk: no transaction, no sampling, zero allocations). The
// ratio between the last two is the price of keeping the STM in the
// loop for read bursts — the number TM.Privatize exists to delete.

// ReadPathModes names the three read paths in sweep order.
var ReadPathModes = []string{"classic-read", "snapshot-pinned", "privatized-plain"}

// readPathPoint measures one (mode, threads) point over a fresh
// prepopulated map. Lookup keys are drawn uniformly from twice the
// populated range, so roughly half the probes hit.
func readPathPoint(mode string, size, threads int, dur time.Duration, opts ...core.Option) (Result, error) {
	tm := core.New(opts...)
	m := txstruct.NewTreeMapOf[int](tm, core.Snapshot)
	for k := 0; k < size; k++ {
		if _, err := m.Put(k, k); err != nil {
			return Result{}, err
		}
	}
	keyRange := 2 * size
	before := tm.Stats()
	var res Result
	switch mode {
	case "classic-read":
		res = MeasureOps(mode, threads, dur, 0, func(int) func(*Xorshift) error {
			return func(rng *Xorshift) error {
				k := rng.Intn(keyRange)
				return tm.Atomically(core.Classic, func(tx *core.Tx) error {
					m.GetTx(tx, k)
					return nil
				})
			}
		})
	case "snapshot-pinned":
		pin, err := tm.PinSnapshot()
		if err != nil {
			return Result{}, err
		}
		defer pin.Release()
		res = MeasureOps(mode, threads, dur, 0, func(int) func(*Xorshift) error {
			return func(rng *Xorshift) error {
				k := rng.Intn(keyRange)
				return pin.Atomically(func(tx *core.Tx) error {
					m.GetTx(tx, k)
					return nil
				})
			}
		})
	case "privatized-plain":
		d, err := m.Detach()
		if err != nil {
			return Result{}, err
		}
		defer d.Republish()
		res = MeasureOps(mode, threads, dur, 0, func(int) func(*Xorshift) error {
			return func(rng *Xorshift) error {
				d.Get(rng.Intn(keyRange))
				return nil
			}
		})
	default:
		return Result{}, fmt.Errorf("readpath: unknown mode %q", mode)
	}
	after := tm.Stats()
	res.TxCommits = after.Commits - before.Commits
	res.TxAborts = after.TotalAborts() - before.TotalAborts()
	res.TxAttempts = after.Attempts - before.Attempts
	return res, nil
}

// RunReadPathSweep measures every read path across the thread counts and
// prints the lookup throughput plus the privatized-over-pinned ratio per
// point. With rec non-nil the points land in the trajectory under the
// "read-path" figure, one series per mode (no sequential denominator —
// the ratio column is the figure's claim).
func RunReadPathSweep(w io.Writer, rec *JSONRun, size int, threads []int, dur time.Duration, opts ...core.Option) error {
	fmt.Fprintf(w, "read-path sweep: %d-element map, uniform lookups over twice the range (~50%% hits)\n", size)
	fmt.Fprintf(w, "%8s %16s %16s %16s %12s\n", "threads", "classic/s", "pinned/s", "privatized/s", "priv/pinned")
	series := make([]Series, len(ReadPathModes))
	for i, mode := range ReadPathModes {
		series[i].Impl = mode
	}
	for _, th := range threads {
		row := make([]Result, len(ReadPathModes))
		for i, mode := range ReadPathModes {
			res, err := readPathPoint(mode, size, th, dur, opts...)
			if err != nil {
				return err
			}
			row[i] = res
			series[i].Threads = append(series[i].Threads, th)
			series[i].Speedups = append(series[i].Speedups, 0)
			series[i].Raw = append(series[i].Raw, res)
		}
		ratio := 0.0
		if row[1].Throughput > 0 {
			ratio = row[2].Throughput / row[1].Throughput
		}
		fmt.Fprintf(w, "%8d %16.0f %16.0f %16.0f %11.1fx\n",
			th, row[0].Throughput, row[1].Throughput, row[2].Throughput, ratio)
	}
	if rec != nil {
		rec.AddFigure("read-path", series, Result{})
	}
	return nil
}
