package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
)

// This file implements the cache stripe sweep: the striped transactional
// LRU (internal/cache) measured across stripe counts × thread counts on
// a get-heavy mix, with the pre-rework strict-LRU configuration (one
// stripe, relink-on-hit) kept in every run as the contention baseline.
// The default regime is the hit path: the key range sits at 7/8 of
// capacity, so after warming every key is resident, no stripe ever
// overflows its capacity share (Fibonacci routing spreads keys within a
// few percent of even, well inside the 12.5% slack), and the measured
// window is 100% hits with zero eviction traffic. That is the regime
// the rework targets — the relink baseline writes the shared MRU head
// cell on every hit, while second-chance hits only set a key-local bit
// (read-only once set) — so the contrast shows up as hit-path ops/s on
// a many-core host and as hit-path abort rate on a small one. Setting
// KeyRange above Capacity instead selects the churn regime (continuous
// insert/evict traffic); there the conflicting writes are bucket-chain
// and tail updates, which the stripes divide but every configuration
// pays.

// CacheStripesConfig parameterizes RunCacheStripesSweep.
type CacheStripesConfig struct {
	// Capacity is the total cache bound (split across stripes).
	Capacity int
	// KeyRange is the key domain. Zero selects 7/8 of Capacity — the
	// hit-path regime: after warming, every key is resident and no
	// stripe overflows its capacity share, so the measured window is
	// pure hits. Values above Capacity select the churn regime
	// (continuous insert/evict traffic at a ~Capacity/KeyRange hit
	// rate). Values between 7/8 and Capacity are accepted but risky:
	// hash imbalance can push a stripe past its share and re-introduce
	// churn in the striped configurations only.
	KeyRange int
	// StripeCounts are the stripe configurations to sweep; zero-length
	// selects 1/2/4/8/16.
	StripeCounts []int
	// Threads are the worker counts per stripe configuration.
	Threads []int
	// Duration is the measured window per point.
	Duration time.Duration
}

func (cfg *CacheStripesConfig) fill() {
	if cfg.Capacity < 2 {
		cfg.Capacity = 2
	}
	if cfg.KeyRange <= 0 {
		cfg.KeyRange = cfg.Capacity * 7 / 8
		if cfg.KeyRange < 1 {
			cfg.KeyRange = 1
		}
	}
	if len(cfg.StripeCounts) == 0 {
		cfg.StripeCounts = []int{1, 2, 4, 8, 16}
	}
	if len(cfg.Threads) == 0 {
		cfg.Threads = []int{1, 8}
	}
	if cfg.Duration == 0 {
		cfg.Duration = 250 * time.Millisecond
	}
}

// RunCacheStripesSweep measures the striped cache at every stripe count
// × thread count of cfg: a 65/25/10 get/put/peek mix (get-heavy — the
// hit path is what striping and the second-chance bit are for) over
// cfg.KeyRange keys. The first series is the pre-rework baseline — one
// stripe, RelinkOnHit, i.e. strict LRU whose every hit writes the shared
// head cell — and the rest are second-chance curves, one Series per
// stripe count with its Stripes field set, so the trajectory records
// which curve is which. With w non-nil the table prints as it measures;
// with rec non-nil the series land under the "lru-cache-stripes" figure.
func RunCacheStripesSweep(w io.Writer, rec *JSONRun, cfg CacheStripesConfig, opts ...core.Option) ([]Series, error) {
	cfg.fill()
	if w != nil {
		fmt.Fprintf(w, "LRU cache stripe sweep: capacity %d, key range %d (get 65%% / put 25%% / peek 10%%)\n",
			cfg.Capacity, cfg.KeyRange)
		fmt.Fprintf(w, "%-16s %8s %14s %12s %10s %10s\n", "impl", "threads", "ops/s", "aborts", "abort%", "hit%")
	}
	type variant struct {
		impl    string
		stripes int
		relink  bool
	}
	variants := []variant{{impl: "tx-lru-relink-s1", stripes: 1, relink: true}}
	for _, ns := range cfg.StripeCounts {
		variants = append(variants, variant{impl: fmt.Sprintf("tx-lru-s%d", ns), stripes: ns})
	}
	var out []Series
	for _, v := range variants {
		s := Series{Impl: v.impl, Stripes: v.stripes}
		for _, th := range cfg.Threads {
			res, err := runCacheStripesPoint(cfg, v.stripes, v.relink, th, opts...)
			if err != nil {
				return nil, err
			}
			res.Impl = v.impl
			if w != nil {
				fmt.Fprintf(w, "%-16s %8d %14.0f %12d %9.3f%% %9.1f%%\n",
					v.impl, th, res.Throughput, res.TxAborts, 100*res.AbortRate(), 100*res.HitRate)
			}
			s.Threads = append(s.Threads, th)
			s.Speedups = append(s.Speedups, 0) // no sequential denominator for the cache
			s.Raw = append(s.Raw, res)
		}
		out = append(out, s)
	}
	if rec != nil {
		rec.AddFigure("lru-cache-stripes", out, Result{})
	}
	return out, nil
}

func runCacheStripesPoint(cfg CacheStripesConfig, stripes int, relink bool, threads int, opts ...core.Option) (Result, error) {
	tm := core.New(opts...)
	c := cache.NewWith[int](tm, cfg.Capacity, cache.Options{Stripes: stripes, RelinkOnHit: relink})
	// Warm across the whole key range: in the hit-path regime every key
	// is then resident for the whole measured window; in the churn
	// regime every stripe starts at its share so eviction runs from the
	// first measured op.
	for k := 0; k < cfg.KeyRange; k++ {
		if _, err := c.Put(k, k); err != nil {
			return Result{}, err
		}
	}
	before := tm.Stats()
	preHits, preMisses, _ := c.Stats()
	res := MeasureOps(fmt.Sprintf("tx-lru-s%d", stripes), threads, cfg.Duration, 0,
		func(int) func(*Xorshift) error {
			return func(rng *Xorshift) error {
				// Separate draws for key and roll: one shared draw would
				// correlate operation class with key and skew the hit rate.
				key := rng.Intn(cfg.KeyRange)
				switch roll := rng.Intn(100); {
				case roll < 65:
					_, _, err := c.Get(key)
					return err
				case roll < 90:
					_, err := c.Put(key, int(rng.Next()))
					return err
				default:
					_, _, err := c.Peek(key)
					return err
				}
			}
		})
	if res.Errors > 0 {
		return Result{}, fmt.Errorf("cache stripe sweep s=%d t=%d: %d op error(s)", stripes, threads, res.Errors)
	}
	after := tm.Stats()
	res.TxCommits = after.Commits - before.Commits
	res.TxAborts = after.TotalAborts() - before.TotalAborts()
	res.TxAttempts = after.Attempts - before.Attempts
	hits, misses, _ := c.Stats()
	if d := (hits - preHits) + (misses - preMisses); d > 0 {
		res.HitRate = float64(hits-preHits) / float64(d)
	}
	return res, nil
}
