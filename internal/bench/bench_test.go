package bench

import (
	"strings"
	"testing"
	"time"
)

func tinyWorkload(threads int) Workload {
	return Workload{
		InitialSize: 64,
		UpdatePct:   10,
		SizePct:     10,
		Duration:    30 * time.Millisecond,
		Threads:     threads,
	}
}

func TestPrefillReachesInitialSize(t *testing.T) {
	for _, f := range []Factory{
		SequentialFactory(), ClassicSTMFactory(), ElasticMixedFactory(),
		SnapshotMixedFactory(), COWFactory(), CoarseFactory(),
	} {
		s, _ := f.build()
		w := tinyWorkload(1)
		if err := Prefill(s, w); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		n, err := s.Size()
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if n != w.InitialSize {
			t.Fatalf("%s: prefilled size %d, want %d", f.Name, n, w.InitialSize)
		}
	}
}

func TestRunProducesSaneCounts(t *testing.T) {
	for _, f := range []Factory{ClassicSTMFactory(), SnapshotMixedFactory(), COWFactory()} {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			res, err := Run(f, tinyWorkload(2))
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops == 0 {
				t.Fatal("no operations executed")
			}
			if res.Errors != 0 {
				t.Fatalf("%d operation errors", res.Errors)
			}
			if got := res.Contains + res.Adds + res.Removes + res.Sizes; got != res.Ops {
				t.Fatalf("counts %d do not add up to ops %d", got, res.Ops)
			}
			if res.Throughput <= 0 {
				t.Fatalf("throughput %v", res.Throughput)
			}
			// The mix must be roughly respected (wide tolerance: the
			// run is short). Contains should dominate.
			if res.Contains < res.Sizes {
				t.Fatalf("mix off: contains=%d sizes=%d", res.Contains, res.Sizes)
			}
		})
	}
}

func TestSweepNormalizes(t *testing.T) {
	series, seqRes, err := Sweep(
		SequentialFactory(),
		[]Factory{COWFactory()},
		[]int{1, 2},
		tinyWorkload(0),
	)
	if err != nil {
		t.Fatal(err)
	}
	if seqRes.Throughput <= 0 {
		t.Fatal("sequential baseline did not run")
	}
	if len(series) != 1 || len(series[0].Speedups) != 2 {
		t.Fatalf("series shape: %+v", series)
	}
	for _, sp := range series[0].Speedups {
		if sp <= 0 {
			t.Fatalf("non-positive speedup %v", sp)
		}
	}
}

func TestRunFigureRenders(t *testing.T) {
	var sb strings.Builder
	fig := Figure9(tinyWorkload(0), []int{1, 2})
	series, err := RunFigure(&sb, fig)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("figure 9 has %d series, want 3", len(series))
	}
	out := sb.String()
	for _, want := range []string{"figure9", "threads", "elastic+snapshot", "classic-stm", "collection(cow)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered figure missing %q:\n%s", want, out)
		}
	}
}

func TestZipfSkewConcentratesTraffic(t *testing.T) {
	// With a strong skew, update conflicts rise: the abort rate under
	// skew should be at least that of the uniform run (usually well
	// above). Assert weakly to stay robust on a small host.
	uniform := tinyWorkload(4)
	uniform.UpdatePct = 40
	uniform.SizePct = 0
	skewed := uniform
	skewed.ZipfS = 2.5

	ru, err := Run(ClassicSTMFactory(), uniform)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(ClassicSTMFactory(), skewed)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Ops == 0 || ru.Ops == 0 {
		t.Fatal("no operations ran")
	}
	t.Logf("uniform aborts %.2f%%, skewed aborts %.2f%%",
		100*ru.AbortRate(), 100*rs.AbortRate())
}

func TestWorkloadDefaults(t *testing.T) {
	w := Workload{InitialSize: 10}
	w.fill()
	if w.KeyRange != 20 || w.Threads != 1 || w.Duration == 0 || w.Seed == 0 {
		t.Fatalf("defaults not applied: %+v", w)
	}
}

func TestFigureConstructors(t *testing.T) {
	w := PaperWorkload(128, 4, 10*time.Millisecond)
	if w.UpdatePct != 10 || w.SizePct != 10 || w.InitialSize != 128 {
		t.Fatalf("paper workload: %+v", w)
	}
	if len(Figure5(w, DefaultThreads()).Impls) != 2 {
		t.Fatal("figure 5 should have 2 systems")
	}
	if len(Figure7(w, DefaultThreads()).Impls) != 3 {
		t.Fatal("figure 7 should have 3 systems")
	}
	if len(Figure9(w, DefaultThreads()).Impls) != 3 {
		t.Fatal("figure 9 should have 3 systems")
	}
}
