package bench

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/txstruct"
)

// Factories for every system under test. Each measurement run builds a
// fresh set (and, for transactional sets, a fresh TM) so runs do not share
// state.

// SequentialFactory is the speedup denominator of every figure.
func SequentialFactory() Factory {
	return Factory{
		Name:               "sequential",
		New:                func() intset.Set { return baseline.NewSeqList() },
		SupportsAtomicSize: true,
		Sequential:         true,
	}
}

// stmListFactory builds an instrumented transactional-list factory.
func stmListFactory(name string, cfg txstruct.ListConfig, opts ...core.Option) Factory {
	return Factory{
		Name: name,
		NewInstrumented: func() (intset.Set, StatsFn) {
			tm := core.New(opts...)
			return txstruct.NewList(tm, cfg), tm.Stats
		},
		SupportsAtomicSize: true,
	}
}

// ClassicSTMFactory is "classic transactions" (TL2-style) with every
// operation — including size — opaque: the paper's Figure 5 subject.
func ClassicSTMFactory(opts ...core.Option) Factory {
	return stmListFactory("classic-stm", txstruct.ListConfig{
		Parse: core.Classic, Size: core.Classic,
	}, opts...)
}

// ElasticMixedFactory labels the parse operations elastic and keeps size
// classic: the paper's Figure 7 subject ("elastic + classic").
func ElasticMixedFactory(opts ...core.Option) Factory {
	return stmListFactory("elastic+classic", txstruct.ListConfig{
		Parse: core.Elastic, Size: core.Classic,
	}, opts...)
}

// SnapshotMixedFactory labels parses elastic and size snapshot: the
// paper's Figure 9 subject (the full mixed model).
func SnapshotMixedFactory(opts ...core.Option) Factory {
	return stmListFactory("elastic+snapshot", txstruct.ListConfig{
		Parse: core.Elastic, Size: core.Snapshot,
	}, opts...)
}

// STMListFactoryWith exposes stmListFactory for ablations (contention
// manager sweeps, version-depth and window-size experiments).
func STMListFactoryWith(name string, cfg txstruct.ListConfig, opts ...core.Option) Factory {
	return stmListFactory(name, cfg, opts...)
}

// COWFactory is the "existing concurrent collection": the copy-on-write
// workaround that java.util.concurrent users need for an atomic size.
func COWFactory() Factory {
	return Factory{
		Name:               "collection(cow)",
		New:                func() intset.Set { return baseline.NewCOWSet() },
		SupportsAtomicSize: true,
	}
}

// CoarseFactory is the single-global-lock comparator.
func CoarseFactory() Factory {
	return Factory{
		Name:               "coarse-lock",
		New:                func() intset.Set { return baseline.NewCoarseList() },
		SupportsAtomicSize: true,
	}
}

// HoHFactory is Algorithm 3's hand-over-hand list (parse workloads only).
func HoHFactory() Factory {
	return Factory{
		Name: "hand-over-hand",
		New:  func() intset.Set { return baseline.NewHoHList() },
	}
}

// LazyFactory is the lazy list [29] (parse workloads only).
func LazyFactory() Factory {
	return Factory{
		Name: "lazy-list",
		New:  func() intset.Set { return baseline.NewLazyList() },
	}
}

// HarrisFactory is the lock-free list [36, 28] (parse workloads only).
func HarrisFactory() Factory {
	return Factory{
		Name: "lock-free",
		New:  func() intset.Set { return baseline.NewHarrisList() },
	}
}

// HashSetFactory is the transactional hash set with the given semantics,
// an additional structure beyond the paper's list benchmark.
func HashSetFactory(name string, buckets int, cfg txstruct.ListConfig, opts ...core.Option) Factory {
	return Factory{
		Name: name,
		NewInstrumented: func() (intset.Set, StatsFn) {
			tm := core.New(opts...)
			return txstruct.NewHashSet(tm, buckets, cfg), tm.Stats
		},
		SupportsAtomicSize: true,
	}
}

// SkipListFactory is the transactional skip list (classic parses,
// configurable size semantics).
func SkipListFactory(name string, sizeSem core.Semantics, opts ...core.Option) Factory {
	return Factory{
		Name: name,
		NewInstrumented: func() (intset.Set, StatsFn) {
			tm := core.New(opts...)
			return txstruct.NewSkipList(tm, sizeSem), tm.Stats
		},
		SupportsAtomicSize: true,
	}
}

// StripedFactory is the lock-striped hash set (weakly consistent size;
// parse workloads only).
func StripedFactory() Factory {
	return Factory{
		Name: "striped-hash",
		New:  func() intset.Set { return baseline.NewStripedHashSet(64) },
	}
}

// Figure describes one of the paper's throughput figures.
type Figure struct {
	Name     string
	Caption  string
	Impls    []Factory
	Workload Workload
	Threads  []int
	// stmOpts remembers the TM options the figure's transactional
	// factories were built with, so BoxedVariant can rebuild their
	// untyped twins under identical configuration.
	stmOpts []core.Option
}

// DefaultThreads is the paper's sweep (1..64 hardware threads on the
// Niagara 2); beyond the host's core count the extra goroutines measure
// oversubscription, which we keep for shape fidelity.
func DefaultThreads() []int { return []int{1, 2, 4, 8, 16, 32, 64} }

// Figure5 compares classic transactions against the concurrent collection
// (paper: collection 2.2x faster than classic TL2 at 64 threads).
func Figure5(w Workload, threads []int, opts ...core.Option) Figure {
	return Figure{
		Name:     "figure5",
		Caption:  "Throughput over sequential: classic transactions vs existing collection",
		Impls:    []Factory{ClassicSTMFactory(opts...), COWFactory()},
		Workload: w,
		Threads:  threads,
		stmOpts:  opts,
	}
}

// Figure7 adds the elastic+classic mix (paper: 3.5x over classic, 1.6x
// over the collection at best, with a 32->64 thread slowdown).
func Figure7(w Workload, threads []int, opts ...core.Option) Figure {
	return Figure{
		Name:     "figure7",
		Caption:  "Throughput over sequential: elastic+classic vs classic vs collection",
		Impls:    []Factory{ElasticMixedFactory(opts...), ClassicSTMFactory(opts...), COWFactory()},
		Workload: w,
		Threads:  threads,
		stmOpts:  opts,
	}
}

// Figure9 adds the snapshot size (paper: 4.3x over classic, 1.9x over the
// collection at 64 threads, scaling to the maximum hardware threads).
func Figure9(w Workload, threads []int, opts ...core.Option) Figure {
	return Figure{
		Name:     "figure9",
		Caption:  "Throughput over sequential: mixed (elastic+snapshot) vs classic vs collection",
		Impls:    []Factory{SnapshotMixedFactory(opts...), ClassicSTMFactory(opts...), COWFactory()},
		Workload: w,
		Threads:  threads,
		stmOpts:  opts,
	}
}

// RunFigure sweeps the figure's implementations and renders the series.
func RunFigure(w io.Writer, fig Figure) ([]Series, error) {
	series, _, err := RunFigureFull(w, fig)
	return series, err
}

// RunFigureFull is RunFigure exposing the sequential denominator too, for
// callers that also record the run in the JSON trajectory.
func RunFigureFull(w io.Writer, fig Figure) ([]Series, Result, error) {
	series, seqRes, err := Sweep(SequentialFactory(), fig.Impls, fig.Threads, fig.Workload)
	if err != nil {
		return nil, Result{}, err
	}
	RenderFigure(w, fig, series, seqRes)
	return series, seqRes, nil
}

// RenderFigure prints the speedup table of one figure plus an ASCII chart.
func RenderFigure(w io.Writer, fig Figure, series []Series, seqRes Result) {
	fmt.Fprintf(w, "%s — %s\n", fig.Name, fig.Caption)
	fmt.Fprintf(w, "workload: %d initial elements, %d%% updates, %d%% sizes, %s per point; sequential baseline %.0f ops/s\n",
		fig.Workload.InitialSize, fig.Workload.UpdatePct, fig.Workload.SizePct,
		fig.Workload.Duration, seqRes.Throughput)
	fmt.Fprintln(w, strings.Repeat("-", 30+12*len(series)))
	fmt.Fprintf(w, "%-10s", "threads")
	for _, s := range series {
		fmt.Fprintf(w, " %16s", s.Impl)
	}
	fmt.Fprintln(w)
	for i, th := range fig.Threads {
		fmt.Fprintf(w, "%-10d", th)
		for _, s := range series {
			if i < len(s.Speedups) {
				fmt.Fprintf(w, " %15.2fx", s.Speedups[i])
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, strings.Repeat("-", 30+12*len(series)))
	// Abort-rate diagnostics for transactional systems: the mechanism
	// behind the curves (classic sizes abort under updates; snapshot
	// sizes commit — section 4.3 of the paper).
	any := false
	for _, s := range series {
		for _, r := range s.Raw {
			if r.TxAttempts > 0 {
				any = true
			}
		}
	}
	if any {
		fmt.Fprintf(w, "%-10s", "aborts/attempt")
		fmt.Fprintln(w)
		for _, s := range series {
			if len(s.Raw) == 0 || s.Raw[0].TxAttempts == 0 {
				continue
			}
			fmt.Fprintf(w, "  %-16s", s.Impl)
			for _, r := range s.Raw {
				fmt.Fprintf(w, " %6.1f%%", 100*r.AbortRate())
			}
			fmt.Fprintln(w)
		}
	}
	RenderChart(w, fig.Threads, series)
}

// RenderChart draws a coarse ASCII speedup chart (threads on x, speedup
// on y), mirroring the figures' visual shape.
func RenderChart(w io.Writer, threads []int, series []Series) {
	const rows = 12
	maxSp := 0.0
	for _, s := range series {
		for _, v := range s.Speedups {
			if v > maxSp {
				maxSp = v
			}
		}
	}
	if maxSp == 0 {
		return
	}
	marks := []byte{'*', 'o', '+', 'x', '#', '@'}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", 6*len(threads)))
	}
	for si, s := range series {
		for i, v := range s.Speedups {
			r := rows - 1 - int(v/maxSp*float64(rows-1)+0.5)
			if r < 0 {
				r = 0
			}
			if r >= rows {
				r = rows - 1
			}
			grid[r][i*6+3] = marks[si%len(marks)]
		}
	}
	for r := range grid {
		y := maxSp * float64(rows-1-r) / float64(rows-1)
		fmt.Fprintf(w, "%6.2fx |%s\n", y, string(grid[r]))
	}
	fmt.Fprintf(w, "        +%s\n", strings.Repeat("-", 6*len(threads)))
	fmt.Fprintf(w, "         ")
	for _, th := range threads {
		fmt.Fprintf(w, "%5d ", th)
	}
	fmt.Fprintln(w, " threads")
	for si, s := range series {
		fmt.Fprintf(w, "         %c = %s\n", marks[si%len(marks)], s.Impl)
	}
}
