// Package bench is the harness that regenerates the paper's throughput
// figures: a Collection workload generator (contains/add/remove/size with
// configurable ratios), a duration-based concurrent runner, normalization
// over the sequential baseline, and plain-text renderers matching the
// figures' series.
package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/intset"
)

// Workload is the Collection benchmark configuration. The paper's setting
// (Figures 5, 7, 9) is 2^12 initial elements, a 10% update ratio and a 10%
// size ratio, the rest contains.
type Workload struct {
	// InitialSize is the number of elements pre-filled before measuring.
	InitialSize int
	// KeyRange is the value domain [0, KeyRange); the default is twice
	// InitialSize so updates hold the size roughly steady.
	KeyRange int
	// UpdatePct is the percentage of operations that are updates, split
	// evenly between add and remove.
	UpdatePct int
	// SizePct is the percentage of operations that are atomic sizes.
	SizePct int
	// Duration is the measured run length per point.
	Duration time.Duration
	// Threads is the number of worker goroutines.
	Threads int
	// Seed randomizes operation choice; 0 selects a fixed default.
	Seed uint64
	// ZipfS skews key selection with a Zipf(s, 1) distribution over the
	// key range when > 1; 0 keeps the uniform paper workload. Skewed
	// keys concentrate traffic on hot spots — the aggregate-field
	// contention that motivates escrow-style relaxations.
	ZipfS float64
}

// paper parameters for the Collection figures.
const (
	PaperInitialSize = 1 << 12
	PaperUpdatePct   = 10
	PaperSizePct     = 10
)

// PaperWorkload returns the figures' workload at the given thread count,
// scaled to the given initial size (use PaperInitialSize for fidelity;
// tests use smaller lists).
func PaperWorkload(initial, threads int, d time.Duration) Workload {
	return Workload{
		InitialSize: initial,
		UpdatePct:   PaperUpdatePct,
		SizePct:     PaperSizePct,
		Duration:    d,
		Threads:     threads,
	}
}

func (w *Workload) fill() {
	if w.KeyRange == 0 {
		w.KeyRange = 2 * w.InitialSize
	}
	if w.Threads == 0 {
		w.Threads = 1
	}
	if w.Duration == 0 {
		w.Duration = 100 * time.Millisecond
	}
	if w.Seed == 0 {
		w.Seed = 0x9e3779b97f4a7c15
	}
}

// Result is one measured point.
type Result struct {
	Impl       string
	Threads    int
	Ops        uint64
	Contains   uint64
	Adds       uint64
	Removes    uint64
	Sizes      uint64
	Errors     uint64
	Elapsed    time.Duration
	Throughput float64 // ops per second

	// Transactional diagnostics (zero for non-STM baselines): commits,
	// aborts and attempts during the measured window. The abort rate is
	// the paper's section 4.3 mechanism — classic size operations abort
	// under concurrent updates, snapshot ones commit.
	TxCommits  uint64
	TxAborts   uint64
	TxAttempts uint64
	TxCuts     uint64
	TxOldReads uint64
	TxKills    uint64

	// HitRate is the cache sweep's hit fraction (0 for non-cache points).
	HitRate float64
}

// AbortRate returns aborts per attempt in the measured window.
func (r Result) AbortRate() float64 {
	if r.TxAttempts == 0 {
		return 0
	}
	return float64(r.TxAborts) / float64(r.TxAttempts)
}

// StatsFn reports runtime counters for instrumented (transactional)
// implementations.
type StatsFn func() core.Stats

// Factory builds a fresh, empty set for one measurement run.
type Factory struct {
	Name string
	New  func() intset.Set
	// NewInstrumented, when set, is used instead of New and additionally
	// exposes the runtime counters of the set's private TM.
	NewInstrumented func() (intset.Set, StatsFn)
	// SupportsAtomicSize is false for fine-grained baselines whose Size
	// is not a snapshot; the figure runners exclude them from
	// size-bearing workloads (they are used in parse-only ablations).
	SupportsAtomicSize bool
	// Sequential marks the single-thread-only baseline.
	Sequential bool
}

// build constructs the set, preferring the instrumented constructor.
func (f Factory) build() (intset.Set, StatsFn) {
	if f.NewInstrumented != nil {
		return f.NewInstrumented()
	}
	return f.New(), nil
}

// Xorshift is a tiny per-worker PRNG; workers must not share math/rand
// state (lock contention would dominate the measurement). Exported so
// custom sweeps built on MeasureOps draw from the same generator.
type Xorshift uint64

// Next advances the generator and returns the raw 64-bit state.
func (x *Xorshift) Next() uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}

// Intn returns a pseudo-random int in [0, n).
func (x *Xorshift) Intn(n int) int {
	return int(x.Next() % uint64(n))
}

// Prefill inserts InitialSize distinct pseudo-random values.
func Prefill(s intset.Set, w Workload) error {
	w.fill()
	rng := Xorshift(w.Seed | 1)
	inserted := 0
	for inserted < w.InitialSize {
		ok, err := s.Add(rng.Intn(w.KeyRange))
		if err != nil {
			return fmt.Errorf("prefill: %w", err)
		}
		if ok {
			inserted++
		}
	}
	return nil
}

// MeasureOps is the duration-based measurement skeleton shared by the
// figure runner (Run) and custom sweeps (the LRU cache bench in
// cmd/collectionbench): start-gated workers loop an op closure until the
// stop flag, with padded per-worker counters, and the aggregate lands in
// a Result with throughput computed over the true elapsed window. mkOp is
// called once per worker (before the start gate) and returns the op body;
// per-worker state (a Zipf source, class counters) lives in that closure.
// Worker PRNGs are seeded exactly as the figure runner always seeded
// them, so refactoring onto this helper changed no measured sequence.
func MeasureOps(impl string, threads int, dur time.Duration, seed uint64, mkOp func(worker int) func(rng *Xorshift) error) Result {
	type workerCounts struct {
		ops, errs uint64
		_         [48]byte
	}
	counts := make([]workerCounts, threads)
	var (
		stop  atomic.Bool
		start = make(chan struct{})
		wg    sync.WaitGroup
	)
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			rng := Xorshift(seed + uint64(t)*0x9e3779b97f4a7c15 + 1)
			op := mkOp(t)
			c := &counts[t]
			<-start
			for !stop.Load() {
				if err := op(&rng); err != nil {
					c.errs++
				}
				c.ops++
			}
		}(t)
	}
	began := time.Now()
	close(start)
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(began)

	res := Result{Impl: impl, Threads: threads, Elapsed: elapsed}
	for i := range counts {
		res.Ops += counts[i].ops
		res.Errors += counts[i].errs
	}
	res.Throughput = float64(res.Ops) / elapsed.Seconds()
	return res
}

// Run measures one (implementation, workload) point: it prefils the set,
// starts w.Threads workers issuing the operation mix for w.Duration, and
// returns the aggregate counts.
func Run(f Factory, w Workload) (Result, error) {
	w.fill()
	set, statsFn := f.build()
	if err := Prefill(set, w); err != nil {
		return Result{}, err
	}
	var before core.Stats
	if statsFn != nil {
		before = statsFn() // exclude prefill from the measured counters
	}

	type classCounts struct {
		contains, adds, removes, sizes uint64
		_                              [32]byte
	}
	classes := make([]classCounts, w.Threads)
	res := MeasureOps(f.Name, w.Threads, w.Duration, w.Seed, func(t int) func(*Xorshift) error {
		var zipf *rand.Zipf
		if w.ZipfS > 1 {
			src := rand.New(rand.NewSource(int64(w.Seed) + int64(t)))
			zipf = rand.NewZipf(src, w.ZipfS, 1, uint64(w.KeyRange-1))
		}
		c := &classes[t]
		return func(rng *Xorshift) error {
			op := rng.Intn(100)
			var v int
			if zipf != nil {
				v = int(zipf.Uint64())
			} else {
				v = rng.Intn(w.KeyRange)
			}
			var err error
			switch {
			case op < w.SizePct:
				_, err = set.Size()
				c.sizes++
			case op < w.SizePct+w.UpdatePct/2:
				_, err = set.Add(v)
				c.adds++
			case op < w.SizePct+w.UpdatePct:
				_, err = set.Remove(v)
				c.removes++
			default:
				_, err = set.Contains(v)
				c.contains++
			}
			return err
		}
	})
	for i := range classes {
		res.Contains += classes[i].contains
		res.Adds += classes[i].adds
		res.Removes += classes[i].removes
		res.Sizes += classes[i].sizes
	}
	if statsFn != nil {
		after := statsFn()
		res.TxCommits = after.Commits - before.Commits
		res.TxAborts = after.TotalAborts() - before.TotalAborts()
		res.TxAttempts = after.Attempts - before.Attempts
		res.TxCuts = after.Cuts - before.Cuts
		res.TxOldReads = after.SnapshotOldReads - before.SnapshotOldReads
		res.TxKills = after.Kills - before.Kills
	}
	return res, nil
}

// Series is one implementation's speedup-over-sequential curve.
type Series struct {
	Impl     string
	Shards   int // partitioned-store sweeps: shard count behind this curve (0 = unsharded)
	CrossPct int // partitioned-store sweeps: % of operations that were cross-shard
	Stripes  int // cache sweeps: stripe count behind this curve (0 = not a stripe sweep)
	Threads  []int
	Speedups []float64
	Raw      []Result
}

// Sweep measures every factory across the thread counts and normalizes
// by the sequential baseline's single-thread throughput on the same
// workload. The sequential factory is measured once at one thread.
func Sweep(seq Factory, impls []Factory, threads []int, base Workload) ([]Series, Result, error) {
	seqWL := base
	seqWL.Threads = 1
	seqRes, err := Run(seq, seqWL)
	if err != nil {
		return nil, Result{}, fmt.Errorf("sequential baseline: %w", err)
	}
	out := make([]Series, 0, len(impls))
	for _, f := range impls {
		s := Series{Impl: f.Name}
		for _, th := range threads {
			wl := base
			wl.Threads = th
			r, err := Run(f, wl)
			if err != nil {
				return nil, Result{}, fmt.Errorf("%s @%d threads: %w", f.Name, th, err)
			}
			s.Threads = append(s.Threads, th)
			s.Speedups = append(s.Speedups, r.Throughput/seqRes.Throughput)
			s.Raw = append(s.Raw, r)
		}
		out = append(out, s)
	}
	return out, seqRes, nil
}
