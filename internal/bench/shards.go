package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
)

// This file is the partitioned-store sweep: the paper's Collection
// workload shape — point updates and lookups plus a percentage of
// whole-structure atomic operations — measured behind one, two, four and
// eight clock domains (shard.Partition + shard.TreeMapOf). Worker key
// stripes are disjoint, so point operations never conflict on data; the
// cost that the partition actually divides is the whole-structure share:
// with one clock domain a "size"-class operation (here a snapshot scan
// counting the domain's entries) walks the entire store, while a 4-shard
// partition scopes it to one quarter — the same reason the single TM's
// pin watermark and reclamation loop stop scaling with store size. A
// second figure holds the shard count at four and sweeps the cross-shard
// mix ratio, pricing the 2PC coordinator against the fast path.

// ShardCounts is the shard-count axis of the disjoint-key sweep.
var ShardCounts = []int{1, 2, 4, 8}

// CrossMixPcts is the cross-shard mix axis, in percent of operations that
// become two-key cross-shard transactions.
var CrossMixPcts = []int{0, 2, 10, 25}

// CrossMixShards is the fixed shard count of the cross-mix figure.
const CrossMixShards = 4

// shardStats folds the per-shard TM counters of a partition.
func shardStats(p *shard.Partition) core.Stats {
	var out core.Stats
	for i := 0; i < p.Shards(); i++ {
		s := p.TM(i).Stats()
		out.Commits += s.Commits
		out.Attempts += s.Attempts
		out.Kills += s.Kills
		if out.Aborts == nil {
			out.Aborts = make(map[core.AbortReason]uint64)
		}
		for r, n := range s.Aborts {
			out.Aborts[r] += n
		}
	}
	return out
}

// shardPoint measures one (shard count, mix, threads) point over a
// freshly prepopulated sharded tree. Each worker draws keys from its own
// disjoint stripe. Per operation: crossPct% are two-key cross-shard
// read-modify-writes through AtomicallyAll; sweepPct% are whole-domain
// atomic scans (snapshot AscendTx over the drawn key's shard — the
// "size"-class operation of the paper's Collection benchmark, scoped to
// the clock domain that owns the key); of the rest, updatePct% are puts
// and the remainder gets.
func shardPoint(shards, size, threads, updatePct, sweepPct, crossPct int, dur time.Duration, opts ...core.Option) (Result, error) {
	p := shard.New(shards, opts...)
	m := shard.NewTreeMapOf[int](p, core.Snapshot)
	for k := 0; k < size; k++ {
		if _, err := m.Put(k, k); err != nil {
			return Result{}, err
		}
	}
	impl := fmt.Sprintf("shards=%d", shards)
	if crossPct > 0 {
		impl = fmt.Sprintf("shards=%d,cross=%d%%", shards, crossPct)
	}
	before := shardStats(p)
	res := MeasureOps(impl, threads, dur, 0, func(worker int) func(*Xorshift) error {
		stride := size / threads
		if stride < 2 {
			stride = 2
		}
		base := (worker * stride) % size
		return func(rng *Xorshift) error {
			k := base + rng.Intn(stride)
			roll := int(rng.Next() % 100)
			if roll < crossPct {
				// Cross-shard read-modify-write over two stripe keys
				// (two keys of one stripe usually hash to different
				// shards, so worker write sets stay disjoint).
				k2 := base + rng.Intn(stride)
				return p.AtomicallyAll(func(mt *shard.MultiTx) error {
					v, _ := m.GetTx(mt, k)
					m.PutTx(mt, k2, v+1)
					return nil
				})
			}
			if roll < crossPct+sweepPct {
				// Whole-domain atomic scan: count the entries of the
				// drawn key's clock domain in one snapshot transaction.
				s := m.ShardFor(k)
				return p.Atomically(s, core.Snapshot, func(tx *core.Tx) error {
					n := 0
					m.Tree(s).AscendTx(tx, func(int, int) bool {
						n++
						return true
					})
					return nil
				})
			}
			if rng.Intn(100) < updatePct {
				_, err := m.Put(k, int(rng.Next()))
				return err
			}
			_, _, err := m.Get(k)
			return err
		}
	})
	after := shardStats(p)
	res.TxCommits = after.Commits - before.Commits
	res.TxAborts = after.TotalAborts() - before.TotalAborts()
	res.TxAttempts = after.Attempts - before.Attempts
	res.TxKills = after.Kills - before.Kills
	return res, nil
}

// RunShardSweep measures the partitioned store along both axes and, with
// rec non-nil, records two figures in the trajectory: "shard-sweep" (one
// disjoint-key series per shard count, Shards field set) and
// "shard-crossmix" (fixed CrossMixShards shards, one series per mix
// ratio, CrossPct field set). No sequential denominator — the claim is
// the ratio between the curves, led by 4-shard over 1-shard at the top of
// the thread sweep.
func RunShardSweep(w io.Writer, rec *JSONRun, size, updatePct, sweepPct int, threads []int, dur time.Duration, opts ...core.Option) error {
	fmt.Fprintf(w, "shard sweep: %d-key tree, %d%% puts, %d%% whole-domain scans, disjoint worker stripes — ops/s per shard count\n",
		size, updatePct, sweepPct)
	fmt.Fprintf(w, "%8s", "threads")
	for _, sc := range ShardCounts {
		fmt.Fprintf(w, " %13s %7s", fmt.Sprintf("shards=%d/s", sc), "abort%")
	}
	fmt.Fprintln(w)
	series := make([]Series, len(ShardCounts))
	for i, sc := range ShardCounts {
		series[i].Impl = fmt.Sprintf("shards=%d", sc)
		series[i].Shards = sc
	}
	for _, th := range threads {
		fmt.Fprintf(w, "%8d", th)
		for i, sc := range ShardCounts {
			res, err := shardPoint(sc, size, th, updatePct, sweepPct, 0, dur, opts...)
			if err != nil {
				return err
			}
			series[i].Threads = append(series[i].Threads, th)
			series[i].Speedups = append(series[i].Speedups, 0)
			series[i].Raw = append(series[i].Raw, res)
			fmt.Fprintf(w, " %13.0f %6.1f%%", res.Throughput, 100*res.AbortRate())
		}
		fmt.Fprintln(w)
	}
	if rec != nil {
		rec.AddFigure("shard-sweep", series, Result{})
	}

	fmt.Fprintf(w, "\ncross-shard mix sweep: %d shards, ops/s as the 2PC share grows\n", CrossMixShards)
	fmt.Fprintf(w, "%8s", "threads")
	for _, pct := range CrossMixPcts {
		fmt.Fprintf(w, " %13s %7s", fmt.Sprintf("cross=%d%%/s", pct), "abort%")
	}
	fmt.Fprintln(w)
	mix := make([]Series, len(CrossMixPcts))
	for i, pct := range CrossMixPcts {
		mix[i].Impl = fmt.Sprintf("shards=%d,cross=%d%%", CrossMixShards, pct)
		mix[i].Shards = CrossMixShards
		mix[i].CrossPct = pct
	}
	for _, th := range threads {
		fmt.Fprintf(w, "%8d", th)
		for i, pct := range CrossMixPcts {
			res, err := shardPoint(CrossMixShards, size, th, updatePct, 0, pct, dur, opts...)
			if err != nil {
				return err
			}
			mix[i].Threads = append(mix[i].Threads, th)
			mix[i].Speedups = append(mix[i].Speedups, 0)
			mix[i].Raw = append(mix[i].Raw, res)
			fmt.Fprintf(w, " %13.0f %6.1f%%", res.Throughput, 100*res.AbortRate())
		}
		fmt.Fprintln(w)
	}
	if rec != nil {
		rec.AddFigure("shard-crossmix", mix, Result{})
	}
	return nil
}
