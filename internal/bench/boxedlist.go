package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/txstruct"
)

// boxedList is the sorted transactional linked list over UNTYPED cells —
// algorithm-for-algorithm the same structure as txstruct.List, kept as the
// boxing comparator for the -typed bench toggle. Every next-pointer load
// pays an interface type assertion and every commit installs a fresh boxed
// version record, which is exactly the tax the typed-cell migration
// removed; benching both under one binary is what makes the win visible in
// the JSON trajectory.
//
// It intentionally lives in the bench package, not txstruct: it is a
// measurement artifact, not a data structure anyone should reach for.
type boxedNode struct {
	val  int
	next *core.Cell // holds *boxedNode
}

type boxedList struct {
	tm   *core.TM
	cfg  txstruct.ListConfig
	head *core.Cell // holds *boxedNode
}

var _ intset.Set = (*boxedList)(nil)

func newBoxedList(tm *core.TM, cfg txstruct.ListConfig) *boxedList {
	if cfg.Parse == 0 {
		cfg.Parse = core.Classic
	}
	if cfg.Size == 0 {
		cfg.Size = core.Classic
	}
	return &boxedList{tm: tm, cfg: cfg, head: tm.NewCell((*boxedNode)(nil))}
}

func loadBoxed(tx *core.Tx, c *core.Cell) *boxedNode {
	n, ok := tx.Load(c).(*boxedNode)
	if !ok {
		panic(fmt.Sprintf("bench: boxed list cell holds %T, want *boxedNode", tx.Load(c)))
	}
	return n
}

func (l *boxedList) containsTx(tx *core.Tx, v int) bool {
	curr := loadBoxed(tx, l.head)
	for curr != nil && curr.val < v {
		curr = loadBoxed(tx, curr.next)
	}
	return curr != nil && curr.val == v
}

func (l *boxedList) addTx(tx *core.Tx, v int) bool {
	var prev *boxedNode
	curr := loadBoxed(tx, l.head)
	for curr != nil && curr.val < v {
		prev = curr
		curr = loadBoxed(tx, curr.next)
	}
	if curr != nil && curr.val == v {
		return false
	}
	n := &boxedNode{val: v, next: l.tm.NewCell(curr)}
	if prev == nil {
		tx.Store(l.head, n)
	} else {
		tx.Store(prev.next, n)
	}
	return true
}

func (l *boxedList) removeTx(tx *core.Tx, v int) bool {
	var prev *boxedNode
	curr := loadBoxed(tx, l.head)
	for curr != nil && curr.val < v {
		prev = curr
		curr = loadBoxed(tx, curr.next)
	}
	if curr == nil || curr.val != v {
		return false
	}
	succ := loadBoxed(tx, curr.next)
	if prev == nil {
		tx.Store(l.head, succ)
	} else {
		tx.Store(prev.next, succ)
	}
	// Republish the removed node's next pointer, matching txstruct.List's
	// removal discipline (parses paused on the node detect the removal).
	tx.Store(curr.next, succ)
	return true
}

func (l *boxedList) sizeTx(tx *core.Tx) int {
	n := 0
	for curr := loadBoxed(tx, l.head); curr != nil; curr = loadBoxed(tx, curr.next) {
		n++
	}
	return n
}

// Contains implements intset.Set under the parse semantics.
func (l *boxedList) Contains(v int) (bool, error) {
	var found bool
	err := l.tm.Atomically(l.cfg.Parse, func(tx *core.Tx) error {
		found = l.containsTx(tx, v)
		return nil
	})
	return found, err
}

// Add implements intset.Set under the parse semantics.
func (l *boxedList) Add(v int) (bool, error) {
	var added bool
	err := l.tm.Atomically(l.cfg.Parse, func(tx *core.Tx) error {
		added = l.addTx(tx, v)
		return nil
	})
	return added, err
}

// Remove implements intset.Set under the parse semantics.
func (l *boxedList) Remove(v int) (bool, error) {
	var removed bool
	err := l.tm.Atomically(l.cfg.Parse, func(tx *core.Tx) error {
		removed = l.removeTx(tx, v)
		return nil
	})
	return removed, err
}

// Size implements intset.Set under the size semantics.
func (l *boxedList) Size() (int, error) {
	var n int
	err := l.tm.Atomically(l.cfg.Size, func(tx *core.Tx) error {
		n = l.sizeTx(tx)
		return nil
	})
	return n, err
}

// boxedListFactory builds an instrumented boxing-comparator factory.
func boxedListFactory(name string, cfg txstruct.ListConfig, opts ...core.Option) Factory {
	return Factory{
		Name: name,
		NewInstrumented: func() (intset.Set, StatsFn) {
			tm := core.New(opts...)
			return newBoxedList(tm, cfg), tm.Stats
		},
		SupportsAtomicSize: true,
	}
}

// BoxedClassicSTMFactory is ClassicSTMFactory's untyped-cell twin.
func BoxedClassicSTMFactory(opts ...core.Option) Factory {
	return boxedListFactory("classic-stm-boxed", txstruct.ListConfig{
		Parse: core.Classic, Size: core.Classic,
	}, opts...)
}

// BoxedElasticMixedFactory is ElasticMixedFactory's untyped-cell twin.
func BoxedElasticMixedFactory(opts ...core.Option) Factory {
	return boxedListFactory("elastic+classic-boxed", txstruct.ListConfig{
		Parse: core.Elastic, Size: core.Classic,
	}, opts...)
}

// BoxedSnapshotMixedFactory is SnapshotMixedFactory's untyped-cell twin.
func BoxedSnapshotMixedFactory(opts ...core.Option) Factory {
	return boxedListFactory("elastic+snapshot-boxed", txstruct.ListConfig{
		Parse: core.Elastic, Size: core.Snapshot,
	}, opts...)
}

// BoxedVariant maps a figure onto its boxing comparators: every
// transactional-list implementation is replaced by its untyped twin (other
// impls — COW, baselines — pass through). Used by collectionbench's
// -typed=false toggle. It errors when no implementation was swapped: a
// "-boxed" figure that silently kept the typed lists would invalidate the
// comparison the toggle exists for.
func BoxedVariant(fig Figure) (Figure, error) {
	out := fig
	out.Name = fig.Name + "-boxed"
	out.Caption = fig.Caption + " (untyped boxing cells)"
	out.Impls = make([]Factory, len(fig.Impls))
	swapped := 0
	for i, f := range fig.Impls {
		switch f.Name {
		case "classic-stm":
			out.Impls[i] = BoxedClassicSTMFactory(fig.stmOpts...)
			swapped++
		case "elastic+classic":
			out.Impls[i] = BoxedElasticMixedFactory(fig.stmOpts...)
			swapped++
		case "elastic+snapshot":
			out.Impls[i] = BoxedSnapshotMixedFactory(fig.stmOpts...)
			swapped++
		default:
			out.Impls[i] = f
		}
	}
	if swapped == 0 {
		return Figure{}, fmt.Errorf("boxed variant of %q: no transactional list implementation recognized — factory names drifted?", fig.Name)
	}
	return out, nil
}
