package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"runtime"
	"strings"
	"time"
)

// This file implements the machine-readable side of the bench harness: a
// JSON "trajectory" file that accumulates one entry per benchmark run, so
// performance PRs can commit a before/after pair and later sessions can
// extend the same file instead of starting a fresh measurement story.

// JSONPoint is one measured (implementation, thread-count) point.
type JSONPoint struct {
	Threads    int     `json:"threads"`
	Ops        uint64  `json:"ops"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	Speedup    float64 `json:"speedup,omitempty"` // over the sequential baseline; absent where not normalized (ablation points)
	TxCommits  uint64  `json:"tx_commits,omitempty"`
	TxAborts   uint64  `json:"tx_aborts,omitempty"`
	TxAttempts uint64  `json:"tx_attempts,omitempty"`
	AbortRate  float64 `json:"abort_rate,omitempty"`
	HitRate    float64 `json:"hit_rate,omitempty"` // cache-sweep points only
}

// JSONSeries is one implementation's curve within a figure. Shards and
// CrossPct are set by the partitioned-store sweeps, Stripes by the cache
// stripe sweeps, so a trajectory consumer can tell a 4-shard
// disjoint-key curve (or an 8-stripe cache curve) from its neighbours
// without parsing the Impl label.
type JSONSeries struct {
	Impl     string      `json:"impl"`
	Shards   int         `json:"shards,omitempty"`
	CrossPct int         `json:"cross_pct,omitempty"`
	Stripes  int         `json:"stripes,omitempty"`
	Points   []JSONPoint `json:"points"`
}

// JSONFigure is one figure of a run: the sequential denominator plus every
// implementation's curve.
type JSONFigure struct {
	Name         string       `json:"name"`
	SeqOpsPerSec float64      `json:"seq_ops_per_sec"`
	Series       []JSONSeries `json:"series"`
}

// JSONHost records the machine topology a run measured on — the context
// without which a many-core sweep's numbers cannot be read (a 64-thread
// point on a 4-core host measures oversubscription, not scaling).
type JSONHost struct {
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
	CPUModel   string `json:"cpu_model,omitempty"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
}

// hostInfo samples the topology at run-record time. The CPU model comes
// from /proc/cpuinfo where available and is empty elsewhere.
func hostInfo() JSONHost {
	h := JSONHost{
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
	}
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if name, ok := strings.CutPrefix(line, "model name"); ok {
				h.CPUModel = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
				break
			}
		}
	}
	return h
}

// JSONWorkload records the workload parameters a run measured under.
type JSONWorkload struct {
	InitialSize int    `json:"initial_size"`
	UpdatePct   int    `json:"update_pct"`
	SizePct     int    `json:"size_pct"`
	Duration    string `json:"duration"`
}

// JSONRun is one benchmark invocation: the environment, the workload, the
// clock scheme under test and every figure measured.
type JSONRun struct {
	Bench      string       `json:"bench"`
	Label      string       `json:"label"`
	Time       string       `json:"time"`
	GoVersion  string       `json:"go_version"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Host       JSONHost     `json:"host"`
	Scheme     string       `json:"clock_scheme"`
	Workload   JSONWorkload `json:"workload"`
	Figures    []JSONFigure `json:"figures"`
}

// JSONFile is the on-disk trajectory: runs in append order.
type JSONFile struct {
	Runs []JSONRun `json:"runs"`
}

// NewJSONRun starts a run entry for the given tool, label and clock scheme.
func NewJSONRun(benchName, label, scheme string, w Workload) *JSONRun {
	return &JSONRun{
		Bench:      benchName,
		Label:      label,
		Time:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Host:       hostInfo(),
		Scheme:     scheme,
		Workload: JSONWorkload{
			InitialSize: w.InitialSize,
			UpdatePct:   w.UpdatePct,
			SizePct:     w.SizePct,
			Duration:    w.Duration.String(),
		},
	}
}

// AddFigure appends one measured figure (its series plus the sequential
// denominator) to the run.
func (r *JSONRun) AddFigure(name string, series []Series, seq Result) {
	jf := JSONFigure{Name: name, SeqOpsPerSec: seq.Throughput}
	for _, s := range series {
		js := JSONSeries{Impl: s.Impl, Shards: s.Shards, CrossPct: s.CrossPct, Stripes: s.Stripes}
		for i, raw := range s.Raw {
			js.Points = append(js.Points, JSONPoint{
				Threads:    raw.Threads,
				Ops:        raw.Ops,
				OpsPerSec:  raw.Throughput,
				Speedup:    s.Speedups[i],
				TxCommits:  raw.TxCommits,
				TxAborts:   raw.TxAborts,
				TxAttempts: raw.TxAttempts,
				AbortRate:  raw.AbortRate(),
				HitRate:    raw.HitRate,
			})
		}
		jf.Series = append(jf.Series, js)
	}
	r.Figures = append(r.Figures, jf)
}

// AddPoint appends a single measured point as a one-point series under the
// named figure, creating the figure on first use — the shape the ablation
// sweeps record, where each configuration is one measurement.
func (r *JSONRun) AddPoint(figure, impl string, res Result) {
	var jf *JSONFigure
	for i := range r.Figures {
		if r.Figures[i].Name == figure {
			jf = &r.Figures[i]
			break
		}
	}
	if jf == nil {
		r.Figures = append(r.Figures, JSONFigure{Name: figure})
		jf = &r.Figures[len(r.Figures)-1]
	}
	jf.Series = append(jf.Series, JSONSeries{
		Impl: impl,
		Points: []JSONPoint{{
			Threads:    res.Threads,
			Ops:        res.Ops,
			OpsPerSec:  res.Throughput,
			TxCommits:  res.TxCommits,
			TxAborts:   res.TxAborts,
			TxAttempts: res.TxAttempts,
			AbortRate:  res.AbortRate(),
			HitRate:    res.HitRate,
		}},
	})
}

// AppendJSONRun loads the trajectory at path (an absent file is an empty
// trajectory), appends run, and writes the file back, so successive runs —
// across PRs — accumulate in one committed artifact.
func AppendJSONRun(path string, run *JSONRun) error {
	var file JSONFile
	data, err := os.ReadFile(path)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		// first run: start a fresh trajectory
	case err != nil:
		return fmt.Errorf("bench json: %w", err)
	default:
		if err := json.Unmarshal(data, &file); err != nil {
			return fmt.Errorf("bench json: %s is not a trajectory file: %w", path, err)
		}
	}
	file.Runs = append(file.Runs, *run)
	out, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return fmt.Errorf("bench json: %w", err)
	}
	out = append(out, '\n')
	// Write-then-rename: the trajectory accumulates runs across PRs, so an
	// interrupted write must never truncate the existing history.
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, out, 0o644); err != nil {
		return fmt.Errorf("bench json: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("bench json: %w", err)
	}
	return nil
}
