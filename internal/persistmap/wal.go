package persistmap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/persistmap/walsync"
	"repro/internal/txstruct"
)

// This file is the write-ahead half of always-on durability: where the
// checkpoint chain (store.go) makes PERIODIC cuts durable, the WAL makes
// every COMMIT durable. A Map with a WAL attached registers, via the
// core's Tx.Defer onCommit machinery, one commit hook per update
// transaction; the hook stamps the transaction's buffered map operations
// with Tx.CommitVersion and streams them as one framed record into the
// walsync group-commit daemon, which batches concurrent committers into a
// single fsync and acks each on durability. Recovery (Store.Replay) loads
// the newest checkpoint chain and re-applies the WAL tail in commit-
// version order through the chunked RestoreDiffTx live-apply path.
//
// Segment layout (all integers little-endian):
//
//	header  magic    [8]byte  "reprowal"
//	        format   uint16   currently 1
//	        codec    uint8 n, [n]byte   the value codec's Name
//	        crc      uint32   IEEE CRC32 over the header bytes above
//	records each:
//	        version  uint64   the commit version of the write set
//	        count    uint32   operations in the record
//	        ops      count × { op uint8 (1 put, 2 delete), key int64,
//	                           put: len uint32, value [len]byte }
//	        crc      uint32   IEEE CRC32 over the record bytes above
//
// Every record carries its own CRC so a torn tail — the bytes a crash
// lost from the page cache — is detected at the exact record boundary:
// replay applies the intact prefix and stops, never a byte past a bad
// record. A record's commit versions are NOT monotone in file order (a
// descheduled committer can enqueue after a younger one), so replay
// sorts; conflicting writers serialize through cell locks, which makes
// version order the correct redo order per key.

const (
	walMagic  = "reprowal"
	walFormat = uint16(1)

	walOpPut    = uint8(1)
	walOpDelete = uint8(2)
)

// ErrTornTail marks WAL damage whose shape is a TRUNCATION — the parse
// ran off the end of the file mid-record, exactly what a power cut does
// to unsynced page-cache bytes. It always wraps ErrCorrupt too (a torn
// file IS damaged), so errors.Is(err, ErrCorrupt) keeps matching; the
// finer class lets recovery and tooling tell the legal crash shape from
// a bit flip inside fully-present bytes (checksum mismatch, bad op),
// which is never legal and fails replay loudly.
var ErrTornTail = errors.New("persistmap: torn segment tail")

// DamageKind classifies what a tolerant WAL-segment read found.
type DamageKind uint8

const (
	// DamageNone: the segment parsed to a clean end of file.
	DamageNone DamageKind = iota
	// DamageTorn: an intact prefix, then a record cut off by the end of
	// the file — the legal residue of a crash or poisoned daemon.
	DamageTorn
	// DamageCorrupt: full-length bytes that fail their checksum or
	// structure — never a legal crash shape.
	DamageCorrupt
)

// String names the damage for tooling output.
func (d DamageKind) String() string {
	switch d {
	case DamageNone:
		return "sealed"
	case DamageTorn:
		return "torn"
	default:
		return "corrupt"
	}
}

// classifyDamage maps a tolerant read's parse error to its kind.
func classifyDamage(err error) DamageKind {
	if err == nil {
		return DamageNone
	}
	if errors.Is(err, ErrTornTail) {
		return DamageTorn
	}
	return DamageCorrupt
}

// WALOptions parameterizes OpenWAL.
type WALOptions struct {
	// SegmentBytes is the segment roll threshold (walsync's default when
	// zero).
	SegmentBytes int64
	// MaxBatch caps records per fsync; 0 drains everything queued. The
	// collectionbench fsync-batch sweep is a sweep over this knob.
	MaxBatch int
	// BeforeSync is walsync's crash-injection hook (nil in production).
	BeforeSync func(records int) bool
	// OnDurabilityLost, when set, fires exactly once if the daemon
	// poisons itself after a failed segment write or fsync (see
	// walsync.ErrDurabilityLost): the place to decide whether to degrade
	// to non-durable serving (Map.DetachWAL) or stop the process.
	OnDurabilityLost func(error)
}

// WAL streams committed write sets of one Map into the store directory's
// segmented redo log. Open it with Store.OpenWAL, attach it with
// Map.AttachWAL, close it before the process exits (Close drains and
// fsyncs the queue).
type WAL[V any] struct {
	codec   Codec[V]
	dir     string
	fs      faultfs.FS
	d       *walsync.Daemon
	durable bool
	// tm is the clock domain this WAL serves, bound at AttachWAL: records
	// are stamped with its commit versions and its durable-ack barrier is
	// the one Ack answers, so attaching the same WAL under a second TM is
	// rejected there.
	tm *core.TM

	mu sync.Mutex
	// pending buffers the CURRENT attempt's ops per transaction ID; the
	// entry is consumed by the commit hook and discarded by the abort
	// hook, so a retried attempt re-buffers from scratch.
	pending map[uint64]*walTxBuf[V]
	// acks parks each committed transaction's durability verdict between
	// its commit hook (which enqueued the record) and the TM's durable
	// ack (which waits on it).
	acks map[uint64]<-chan error
}

// walTxBuf accumulates one transaction attempt's map operations.
type walTxBuf[V any] struct {
	attempt int
	keys    []int
	vals    []V
	dels    []bool
}

// OpenWAL starts a write-ahead log (and its group-commit daemon) in the
// store's directory, alongside the checkpoint chain. Existing segments
// are left untouched — a fresh segment is opened after them — so opening
// a WAL never destroys a crashed tail recovery has not read yet.
func (s *Store[V]) OpenWAL(opts WALOptions) (*WAL[V], error) {
	hdr, err := walHeader(s.codec.Name())
	if err != nil {
		return nil, err
	}
	d, err := walsync.Start(walsync.Config{
		Dir:              s.dir,
		Header:           hdr,
		SegmentBytes:     opts.SegmentBytes,
		MaxBatch:         opts.MaxBatch,
		BeforeSync:       opts.BeforeSync,
		FS:               s.fs,
		OnDurabilityLost: opts.OnDurabilityLost,
	})
	if err != nil {
		return nil, err
	}
	return &WAL[V]{
		codec:   s.codec,
		dir:     s.dir,
		fs:      s.fs,
		d:       d,
		pending: make(map[uint64]*walTxBuf[V]),
		acks:    make(map[uint64]<-chan error),
	}, nil
}

// walHeader builds the static per-segment header for a codec.
func walHeader(codec string) ([]byte, error) {
	if len(codec) > 255 {
		return nil, fmt.Errorf("persistmap: codec name %q too long", codec)
	}
	buf := append([]byte(nil), walMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, walFormat)
	buf = append(buf, uint8(len(codec)))
	buf = append(buf, codec...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf)), nil
}

// logOp buffers one map operation of the transaction's current attempt,
// registering the commit/abort hooks on the attempt's first op.
func (w *WAL[V]) logOp(tx *core.Tx, key int, val V, del bool) {
	id := tx.ID()
	w.mu.Lock()
	b := w.pending[id]
	fresh := b == nil
	if fresh {
		b = &walTxBuf[V]{attempt: tx.Attempt()}
		w.pending[id] = b
	} else if b.attempt != tx.Attempt() {
		// Defensive: abort hooks discard the entry between attempts, so a
		// stale buffer should not survive — but a retried attempt must
		// never replay the aborted attempt's ops on top of its own.
		b.keys, b.vals, b.dels = b.keys[:0], b.vals[:0], b.dels[:0]
		b.attempt = tx.Attempt()
		fresh = true
	}
	b.keys = append(b.keys, key)
	b.vals = append(b.vals, val)
	b.dels = append(b.dels, del)
	w.mu.Unlock()
	if fresh {
		tx.Defer(func() { w.commitTx(id, tx) }, func() { w.abortTx(id) })
	}
}

// commitTx is the onCommit hook: encode the attempt's buffered ops as one
// record stamped with the commit version and hand it to the group-commit
// daemon. The durability verdict is parked for Ack (the TM durable-ack
// barrier) to collect; in non-durable mode it is dropped — the record
// still reaches the daemon, the committer just does not wait.
func (w *WAL[V]) commitTx(id uint64, tx *core.Tx) {
	w.mu.Lock()
	b := w.pending[id]
	delete(w.pending, id)
	w.mu.Unlock()
	if b == nil {
		return
	}
	rec, err := appendWALRecord(nil, w.codec, tx.CommitVersion(), b)
	var ch <-chan error
	if err != nil {
		ec := make(chan error, 1)
		ec <- err
		ch = ec
	} else {
		ch = w.d.Append(rec)
	}
	if !w.durable {
		return
	}
	w.mu.Lock()
	w.acks[id] = ch
	w.mu.Unlock()
}

// abortTx is the onAbort hook: the attempt's buffered ops never happened.
func (w *WAL[V]) abortTx(id uint64) {
	w.mu.Lock()
	delete(w.pending, id)
	w.mu.Unlock()
}

// Ack blocks until the transaction's WAL record is durable and returns
// its verdict; transactions that logged nothing (or a WAL in non-durable
// mode) return immediately. Map.AttachWAL installs it as the TM's
// durable-ack barrier, which is what parks concurrent committers inside
// Atomically while one fsync covers all of them.
func (w *WAL[V]) Ack(tx *core.Tx) error {
	id := tx.ID()
	w.mu.Lock()
	ch := w.acks[id]
	delete(w.acks, id)
	w.mu.Unlock()
	if ch == nil {
		return nil
	}
	return <-ch
}

// Close drains and fsyncs the log. The Map should be quiesced first:
// commits racing with Close fail their durability acks with
// walsync.ErrClosed.
func (w *WAL[V]) Close() error { return w.d.Close() }

// Stats returns the daemon's group-commit counters.
func (w *WAL[V]) Stats() walsync.Stats { return w.d.Stats() }

// Err reports the daemon's poison state: nil while healthy, the
// walsync.ErrDurabilityLost-wrapping error once a segment write or fsync
// has failed. A poisoned WAL fails every durable commit; the owner
// chooses between Map.DetachWAL (serve on, non-durably, by explicit
// decision) and stopping.
func (w *WAL[V]) Err() error { return w.d.Err() }

// TrimTo removes sealed segments every record of which has commit version
// <= ver — the aging-out of WAL history into the checkpoint chain: once a
// full checkpoint at ver is durable, those records are redundant (the
// checkpoint's pinned cut contains every commit at or below its version).
// The open segment and any segment containing a newer record are kept; a
// sealed segment that fails to parse is kept too (verify will name it).
func (w *WAL[V]) TrimTo(ver uint64) (removed int, err error) {
	segs, err := walsync.ScanSegmentsFS(w.fs, w.dir)
	if err != nil {
		return 0, err
	}
	cur := w.d.CurrentSeq()
	for _, sg := range segs {
		if sg.Seq >= cur {
			continue
		}
		info, ierr := readWALInfo(w.fs, sg, false)
		if ierr != nil || info.Torn {
			continue
		}
		if info.Records > 0 && info.MaxVersion > ver {
			continue
		}
		if rerr := w.fs.Remove(sg.Path); rerr != nil {
			return removed, fmt.Errorf("persistmap: %w", rerr)
		}
		removed++
	}
	if removed > 0 {
		if serr := syncDirFS(w.fs, w.dir); serr != nil {
			return removed, serr
		}
	}
	return removed, nil
}

// appendWALRecord frames one committed write set.
func appendWALRecord[V any](buf []byte, codec Codec[V], ver uint64, b *walTxBuf[V]) ([]byte, error) {
	start := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, ver)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.keys)))
	var err error
	for i := range b.keys {
		if b.dels[i] {
			buf = append(buf, walOpDelete)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(b.keys[i])))
			continue
		}
		buf = append(buf, walOpPut)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(b.keys[i])))
		if buf, err = appendValue(buf, codec, b.vals[i]); err != nil {
			return nil, err
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:])), nil
}

// WALSegmentInfo describes one scanned segment, for tooling and trim.
type WALSegmentInfo struct {
	Path  string
	Seq   uint64
	Codec string
	// Records counts intact records; Ops the operations inside them.
	Records, Ops int
	// MinVersion/MaxVersion bound the intact records' commit versions
	// (both 0 when the segment is empty). File order is NOT version
	// order, so these are bounds, not first/last.
	MinVersion, MaxVersion uint64
	// Size is the file size in bytes.
	Size int64
	// Torn reports that the segment ends in bytes past the intact prefix
	// (of either damage kind); Damage classifies them — DamageTorn is the
	// legal crash shape (truncation), DamageCorrupt is a bit flip or
	// structural damage inside fully-present bytes.
	Torn   bool
	Damage DamageKind
}

// String renders the info for persistctl output.
func (wi WALSegmentInfo) String() string {
	return fmt.Sprintf("%s  wal seq %d codec=%s records=%d ops=%d versions=[%d,%d] %dB %s",
		wi.Path, wi.Seq, wi.Codec, wi.Records, wi.Ops, wi.MinVersion, wi.MaxVersion, wi.Size, wi.Damage)
}

// walRecord is one decoded redo record.
type walRecord[V any] struct {
	ver  uint64
	keys []int
	vals []V
	dels []bool
}

// parseWALHeader verifies a segment's header and returns the codec name
// plus a cursor positioned at the first record.
func parseWALHeader(path string, data []byte) (string, *reader, error) {
	r := &reader{data: data}
	// Running out of bytes mid-header is the torn shape (a crash before
	// the header's fsync); wrong bytes at full length are corruption.
	torn := func(what string) (string, *reader, error) {
		return "", nil, fmt.Errorf("%w: %w: %s: %s", ErrCorrupt, ErrTornTail, path, what)
	}
	magic, err := r.take(len(walMagic))
	if err != nil {
		return torn("truncated magic")
	}
	if string(magic) != walMagic {
		return "", nil, fmt.Errorf("%w: %s: bad WAL magic", ErrCorrupt, path)
	}
	format, err := r.u16()
	if err != nil {
		return torn("truncated format")
	}
	if format != walFormat {
		return "", nil, fmt.Errorf("%w: %s: unsupported WAL format %d", ErrCorrupt, path, format)
	}
	n, err := r.u8()
	if err != nil {
		return torn("truncated header")
	}
	codec, err := r.take(int(n))
	if err != nil {
		return torn("truncated header")
	}
	crc, err := r.u32()
	if err != nil {
		return torn("truncated header")
	}
	if got := crc32.ChecksumIEEE(data[:r.off-4]); got != crc {
		return "", nil, fmt.Errorf("%w: %s: header checksum %08x, file claims %08x", ErrCorrupt, path, got, crc)
	}
	return string(codec), r, nil
}

// parseWALRecord decodes one record at the cursor; decode is called per
// op (the codec-free walk passes a keep-the-bytes decode). A nil error
// with ok=false means the cursor was already at a clean end of file.
func parseWALRecord[V any](path string, r *reader, decode func([]byte) (V, error)) (walRecord[V], bool, error) {
	var rec walRecord[V]
	if r.off == len(r.data) {
		return rec, false, nil
	}
	start := r.off
	bad := func(format string, args ...any) (walRecord[V], bool, error) {
		return rec, false, fmt.Errorf("%w: %s: record at offset %d: %s", ErrCorrupt, path, start, fmt.Sprintf(format, args...))
	}
	// cut is bad's torn-classified sibling: the parse ran off the end of
	// the file, the shape a power cut legally leaves.
	cut := func(format string, args ...any) (walRecord[V], bool, error) {
		return rec, false, fmt.Errorf("%w: %w: %s: record at offset %d: %s", ErrCorrupt, ErrTornTail, path, start, fmt.Sprintf(format, args...))
	}
	ver, err := r.u64()
	if err != nil {
		return cut("truncated version")
	}
	count, err := r.u32()
	if err != nil {
		return cut("truncated count")
	}
	rec.ver = ver
	for i := uint32(0); i < count; i++ {
		op, err := r.u8()
		if err != nil {
			return cut("truncated op %d", i)
		}
		k, err := r.u64()
		if err != nil {
			return cut("truncated key of op %d", i)
		}
		key := int(int64(k))
		switch op {
		case walOpDelete:
			var zero V
			rec.keys = append(rec.keys, key)
			rec.vals = append(rec.vals, zero)
			rec.dels = append(rec.dels, true)
		case walOpPut:
			n, err := r.u32()
			if err != nil {
				return cut("truncated value length of op %d", i)
			}
			raw, err := r.take(int(n))
			if err != nil {
				return cut("truncated value of op %d", i)
			}
			v, err := decode(raw)
			if err != nil {
				return bad("value of op %d: %v", i, err)
			}
			rec.keys = append(rec.keys, key)
			rec.vals = append(rec.vals, v)
			rec.dels = append(rec.dels, false)
		default:
			return bad("unknown op %d", op)
		}
	}
	crc, err := r.u32()
	if err != nil {
		return cut("truncated checksum")
	}
	if got := crc32.ChecksumIEEE(r.data[start : r.off-4]); got != crc {
		return bad("checksum %08x, record claims %08x", got, crc)
	}
	return rec, true, nil
}

// readWALInfo scans one segment structurally (no value decode). In
// strict mode any damage — torn tail included — is ErrCorrupt; otherwise
// the intact prefix is summarized and Torn/Damage mark the rest.
func readWALInfo(fsys faultfs.FS, sg walsync.Segment, strict bool) (WALSegmentInfo, error) {
	info := WALSegmentInfo{Path: sg.Path, Seq: sg.Seq}
	mode := walTolerateAll
	if strict {
		mode = walStrict
	}
	recs, codec, size, damage, err := readWALSegment(fsys, sg, func(raw []byte) (struct{}, error) {
		return struct{}{}, nil
	}, mode)
	if err != nil {
		return info, err
	}
	info.Codec, info.Size, info.Damage = codec, size, damage
	info.Torn = damage != DamageNone
	for _, rec := range recs {
		info.Records++
		info.Ops += len(rec.keys)
		if info.Records == 1 {
			info.MinVersion, info.MaxVersion = rec.ver, rec.ver
			continue
		}
		if rec.ver < info.MinVersion {
			info.MinVersion = rec.ver
		}
		if rec.ver > info.MaxVersion {
			info.MaxVersion = rec.ver
		}
	}
	return info, nil
}

// Tolerance modes for readWALSegment.
const (
	// walStrict: any damage is an error — verification's mode.
	walStrict = iota
	// walTolerateTorn: a truncation-shaped tail is summarized as damage
	// and the intact prefix returned; corruption inside fully-present
	// bytes is still an error. Replay's mode: a torn tail is what a
	// crash or poisoned daemon legally leaves (on ANY segment — a daemon
	// poisoned mid-batch leaves a torn segment that later reopens make a
	// middle segment), while a bit flip must never be silently skipped.
	walTolerateTorn
	// walTolerateAll: every damage kind is summarized, never an error —
	// tooling's describe-what-is-there mode.
	walTolerateAll
)

// readWALSegment reads a segment's intact record prefix; mode governs
// what damage past it does (see the constants above).
func readWALSegment[V any](fsys faultfs.FS, sg walsync.Segment, decode func([]byte) (V, error), mode int) (recs []walRecord[V], codec string, size int64, damage DamageKind, err error) {
	data, err := faultfs.ReadFile(fsys, sg.Path)
	if err != nil {
		return nil, "", 0, DamageNone, fmt.Errorf("persistmap: %w", err)
	}
	size = int64(len(data))
	tolerated := func(perr error) bool {
		switch mode {
		case walTolerateAll:
			return true
		case walTolerateTorn:
			return errors.Is(perr, ErrTornTail)
		default:
			return false
		}
	}
	codec, r, err := parseWALHeader(sg.Path, data)
	if err != nil {
		if !tolerated(err) {
			return nil, "", size, classifyDamage(err), err
		}
		// A header that never finished hitting disk: an empty torn
		// segment, nothing to replay.
		return nil, "", size, classifyDamage(err), nil
	}
	for {
		rec, ok, rerr := parseWALRecord(sg.Path, r, decode)
		if rerr != nil {
			if !tolerated(rerr) {
				return nil, codec, size, classifyDamage(rerr), rerr
			}
			return recs, codec, size, classifyDamage(rerr), nil
		}
		if !ok {
			return recs, codec, size, DamageNone, nil
		}
		recs = append(recs, rec)
	}
}

// ScanWAL lists and structurally summarizes the directory's WAL segments
// in sequence order, tolerating torn tails (Torn marks them). Use
// VerifyWALSegment for the strict verdict on one file.
func ScanWAL(dir string) ([]WALSegmentInfo, error) {
	segs, err := walsync.ScanSegments(dir)
	if err != nil {
		return nil, err
	}
	infos := make([]WALSegmentInfo, 0, len(segs))
	for _, sg := range segs {
		info, err := readWALInfo(faultfs.OS, sg, false)
		if err != nil {
			return nil, err
		}
		infos = append(infos, info)
	}
	return infos, nil
}

// segmentOf parses a path's sequence number back out of its name.
func segmentOf(path string) walsync.Segment {
	var seq uint64
	fmt.Sscanf(filepath.Base(path), "wal-%016x"+walsync.Ext, &seq)
	return walsync.Segment{Seq: seq, Path: path}
}

// ReadWALInfo summarizes one segment tolerantly: a torn or damaged tail
// is reported via Torn, not as an error — the info counterpart of
// VerifyWALSegment, for tooling that describes what is on disk.
func ReadWALInfo(path string) (WALSegmentInfo, error) {
	return readWALInfo(faultfs.OS, segmentOf(path), false)
}

// VerifyWALSegment walks every byte of one segment strictly: any
// truncation, bit flip, bad op or checksum mismatch is ErrCorrupt. It is
// the WAL counterpart of VerifyFile, used by persistctl verify and the
// corruption table test.
func VerifyWALSegment(path string) (WALSegmentInfo, error) {
	return readWALInfo(faultfs.OS, segmentOf(path), true)
}

// ReplayInfo summarizes a Store.Replay: what the chain provided, what
// the WAL tail added, and where recovery stopped.
type ReplayInfo struct {
	// ChainVersion is the newest checkpoint chain's version (0: no chain,
	// recovery started from an empty map).
	ChainVersion uint64
	// Segments and Records count the WAL segments read and the intact
	// records found; Applied counts the records with versions past the
	// chain that were re-applied.
	Segments, Records, Applied int
	// Version is the highest commit version recovered (the chain's when
	// the WAL added nothing).
	Version uint64
	// TornTail reports that a segment ended in a torn record — the
	// expected shape after a mid-batch kill or a poisoned daemon;
	// everything before the tear was applied.
	TornTail bool
	// SkippedCorrupt lists checkpoint files the chain resolution skipped
	// as damaged: recovery fell back to the newest chain the REMAINING
	// files resolve. When the skipped file was the newest full and the
	// WAL had already been trimmed past the previous checkpoint, commits
	// between the two checkpoints may be unrecoverable — non-empty
	// SkippedCorrupt is a restore-from-here warning, not business as
	// usual.
	SkippedCorrupt []string
}

// Replay is crash recovery: load the newest checkpoint chain into m via
// the chunked restore path, then re-apply the WAL tail — every intact
// record with a commit version past the chain — in commit-version order
// through RestoreDiffTx. Damaged checkpoint files are skipped (reported
// in SkippedCorrupt) and the chain re-resolved from what remains, so one
// corrupt newest full degrades recovery instead of failing it. The
// newest WAL segment tolerates any damage (a crash legally leaves
// arbitrary garbage past the synced prefix); sealed segments tolerate
// only TORN tails — a truncation is what a poisoned daemon's unsynced
// bytes legally leave — while full-length corruption there is a bit flip
// over ACKED records and fails the replay loudly: silently skipping them
// would break acked ⇒ survives. The recovered map is the checkpoint
// state plus every acked commit the disk still holds.
func (s *Store[V]) Replay(m *Map[V]) (*ReplayInfo, error) {
	info := &ReplayInfo{}
	infos, corrupt, err := scanLax(s.fs, s.dir)
	if err != nil {
		return nil, err
	}
	for _, c := range corrupt {
		info.SkippedCorrupt = append(info.SkippedCorrupt, c.Path)
	}
	chain, cerr := resolveChain(infos, ^uint64(0))
	switch {
	case cerr == nil:
		b, lerr := s.ReadFull(chain[0].Path)
		if lerr != nil {
			return nil, lerr
		}
		for _, link := range chain[1:] {
			d, derr := s.ReadDiff(link.Path)
			if derr != nil {
				return nil, derr
			}
			if b, lerr = d.Apply(b); lerr != nil {
				return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, link.Path, lerr)
			}
		}
		if rerr := m.RestoreFullTx(b); rerr != nil {
			return nil, rerr
		}
		info.ChainVersion = b.Version
		info.Version = b.Version
	case errors.Is(cerr, ErrNoChain):
		// No usable checkpoint (empty directory, or every full damaged):
		// recover from the WAL alone, starting empty.
	default:
		// Ambiguity or a structurally-broken link among READABLE files is
		// not something to guess around.
		return nil, cerr
	}
	segs, err := walsync.ScanSegmentsFS(s.fs, s.dir)
	if err != nil {
		return nil, err
	}
	var tail []walRecord[V]
	for i, sg := range segs {
		// The newest segment tolerates ANY damage — a crash can land a
		// full-length record with garbage bytes, not just a truncation —
		// while sealed segments tolerate only the truncation shape: their
		// bytes were fsynced before the roll, so full-length corruption
		// there is a bit flip over ACKED records, never a legal crash.
		mode := walTolerateTorn
		if i == len(segs)-1 {
			mode = walTolerateAll
		}
		recs, codec, _, damage, err := readWALSegment(s.fs, sg, s.codec.Decode, mode)
		if err != nil {
			return nil, err
		}
		if codec != "" && codec != s.codec.Name() {
			return nil, fmt.Errorf("persistmap: %s: segment codec %q, store uses %q", sg.Path, codec, s.codec.Name())
		}
		info.Segments++
		info.Records += len(recs)
		if damage != DamageNone {
			info.TornTail = true
		}
		tail = append(tail, recs...)
	}
	// File order is enqueue order, not commit order; redo must apply in
	// commit-version order (conflicting writers serialized through cell
	// locks in exactly that order). The sort is stable so records sharing
	// a version — GVPass adopts the winner's version, and such commits
	// have disjoint write sets — keep their enqueue order.
	sort.SliceStable(tail, func(i, j int) bool { return tail[i].ver < tail[j].ver })
	d := &Diff[V]{}
	for _, rec := range tail {
		if rec.ver <= info.ChainVersion {
			// Already inside the checkpoint's pinned cut.
			continue
		}
		info.Applied++
		if rec.ver > info.Version {
			info.Version = rec.ver
		}
		for i := range rec.keys {
			d.keys = append(d.keys, rec.keys[i])
			d.vals = append(d.vals, rec.vals[i])
			if rec.dels[i] {
				d.kinds = append(d.kinds, txstruct.DiffDeleted)
			} else {
				d.kinds = append(d.kinds, txstruct.DiffChanged)
			}
		}
	}
	if err := m.RestoreDiffTx(d); err != nil {
		return nil, err
	}
	return info, nil
}
