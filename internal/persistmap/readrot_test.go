package persistmap

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faultfs"
)

// rotOnOpen is a targeted read-path schedule: bit rot surfacing the first
// time the named file is opened, everything else clean.
type rotOnOpen struct{ path string }

func (r rotOnOpen) Fault(_ int, op faultfs.OpKind, path string) *faultfs.Fault {
	if op == faultfs.OpOpen && path == r.path {
		return &faultfs.Fault{Rot: true}
	}
	return nil
}

// TestReplayReadRotFallsBack is the read-path recovery regression: the
// chain is written cleanly, then the newest full checkpoint decays on the
// platter — one bit flips when recovery opens it. The load must surface
// the damage as ErrCorrupt internally (never a silently wrong map),
// report the file in SkippedCorrupt, and fall back to the previous
// full+diff chain.
func TestReplayReadRotFallsBack(t *testing.T) {
	fsys := faultfs.New(nil)
	opts := StoreOptions{FS: fsys}
	tm := core.New()
	m := New[int](tm)
	s, err := NewStoreWith("chain", IntCodec{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	put := func(k, v int) {
		t.Helper()
		if _, err := m.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}

	// Chain: full A (keys 0,1) → diff A→B (key 2) → full C (key 3).
	put(0, 10)
	put(1, 11)
	pinA, err := tm.PinSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.BackupAt(pinA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteFull(a); err != nil {
		t.Fatal(err)
	}
	put(2, 12)
	pinB, err := tm.PinSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.Diff(pinA, pinB)
	if err != nil {
		t.Fatal(err)
	}
	pinA.Release()
	if _, err := s.WriteDiff(d); err != nil {
		t.Fatal(err)
	}
	verB := d.Version
	put(3, 13)
	pinC, err := tm.PinSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.BackupAt(pinC)
	if err != nil {
		t.Fatal(err)
	}
	pathC, err := s.WriteFull(c)
	if err != nil {
		t.Fatal(err)
	}
	pinB.Release()
	pinC.Release()

	// The platter decays: checkpoint C rots when recovery first opens it.
	fsys.SetReadInjector(rotOnOpen{path: pathC})

	tm2 := core.New()
	m2 := New[int](tm2)
	s2, err := NewStoreWith("chain", IntCodec{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	info, err := s2.Replay(m2)
	if err != nil {
		t.Fatalf("Replay over rotted newest full = %v, want fallback", err)
	}
	if info.ChainVersion != verB {
		t.Fatalf("ChainVersion = %d, want the previous chain's %d", info.ChainVersion, verB)
	}
	base := pathC[strings.LastIndex(pathC, "/")+1:]
	if len(info.SkippedCorrupt) != 1 || !strings.Contains(info.SkippedCorrupt[0], base) {
		t.Fatalf("SkippedCorrupt = %v, want exactly the rotted full %s", info.SkippedCorrupt, base)
	}
	// No WAL bridges B→C here, so key 3 is the documented casualty; the
	// previous chain must come back exactly.
	mapEquals(t, m2, map[int]int{0: 10, 1: 11, 2: 12}, "read-rot fallback recovery")
}
