package persistmap_test

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/persistmap"
	"repro/internal/txstruct"
)

// ExampleStore is the durability walkthrough: back a live transactional
// map up to disk as a chain (one full backup plus incremental pin-to-pin
// diffs), crash-restart into a fresh TM, and reload the chain — same
// single-cut guarantee, across the process boundary. The chain files are
// checksummed; a flipped byte fails the load instead of restoring a
// silently wrong map.
func ExampleStore() {
	dir, err := os.MkdirTemp("", "persistmap-example-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	tm := core.New()
	m := persistmap.New[string](tm)
	store, err := persistmap.NewStore(dir, persistmap.StringCodec{})
	if err != nil {
		panic(err)
	}

	// Committed base state, then a full backup under one pin. The pin
	// stays live: it is the parent of the next incremental diff.
	m.Put(1, "one")
	m.Put(2, "two")
	m.Put(3, "three")
	pin, _ := tm.PinSnapshot()
	full, _ := m.BackupAt(pin)
	store.WriteFull(full)

	// More commits, then an incremental diff between the two pins: only
	// the churn is walked out, not the whole map.
	m.Put(2, "TWO")  // changed
	m.Delete(3)      // deleted
	m.Put(4, "four") // added
	next, _ := tm.PinSnapshot()
	diff, _ := m.Diff(pin, next)
	store.WriteDiff(diff)
	pin.Release()
	next.Release()
	fmt.Printf("chain: full of %d bindings + diff of %d change(s)\n", full.Len(), diff.Len())
	diff.Each(func(key int, val string, kind txstruct.DiffKind) bool {
		fmt.Printf("  %s key %d\n", kind, key)
		return true
	})

	// "Crash": a fresh TM with a fresh map, nothing shared but the files.
	// Load verifies every link's checksum, replays full+diff, and Restore
	// swaps the state in copy-on-write.
	tm2 := core.New()
	m2 := persistmap.New[string](tm2)
	reloaded, _ := store.Load()
	m2.Restore(reloaded)
	for _, k := range []int{1, 2, 3, 4} {
		if v, ok, _ := m2.Get(k); ok {
			fmt.Printf("reloaded %d = %s\n", k, v)
		}
	}

	// Compact folds the chain back into one full backup file.
	if _, err := store.Compact(); err != nil {
		panic(err)
	}
	infos, _ := persistmap.Scan(dir)
	fmt.Printf("after compact: %d file(s), kind %s\n", len(infos), infos[0].Kind)

	// Output:
	// chain: full of 3 bindings + diff of 3 change(s)
	//   changed key 2
	//   deleted key 3
	//   added key 4
	// reloaded 1 = one
	// reloaded 2 = TWO
	// reloaded 4 = four
	// after compact: 1 file(s), kind full
}
