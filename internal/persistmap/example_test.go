package persistmap_test

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/persistmap"
	"repro/internal/txstruct"
)

// ExampleStore is the durability walkthrough: back a live transactional
// map up to disk as a chain (one full backup plus incremental pin-to-pin
// diffs), crash-restart into a fresh TM, and reload the chain — same
// single-cut guarantee, across the process boundary. The chain files are
// checksummed; a flipped byte fails the load instead of restoring a
// silently wrong map.
func ExampleStore() {
	dir, err := os.MkdirTemp("", "persistmap-example-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	tm := core.New()
	m := persistmap.New[string](tm)
	store, err := persistmap.NewStore(dir, persistmap.StringCodec{})
	if err != nil {
		panic(err)
	}

	// Committed base state, then a full backup under one pin. The pin
	// stays live: it is the parent of the next incremental diff.
	m.Put(1, "one")
	m.Put(2, "two")
	m.Put(3, "three")
	pin, _ := tm.PinSnapshot()
	full, _ := m.BackupAt(pin)
	store.WriteFull(full)

	// More commits, then an incremental diff between the two pins: only
	// the churn is walked out, not the whole map.
	m.Put(2, "TWO")  // changed
	m.Delete(3)      // deleted
	m.Put(4, "four") // added
	next, _ := tm.PinSnapshot()
	diff, _ := m.Diff(pin, next)
	store.WriteDiff(diff)
	pin.Release()
	next.Release()
	fmt.Printf("chain: full of %d bindings + diff of %d change(s)\n", full.Len(), diff.Len())
	diff.Each(func(key int, val string, kind txstruct.DiffKind) bool {
		fmt.Printf("  %s key %d\n", kind, key)
		return true
	})

	// "Crash": a fresh TM with a fresh map, nothing shared but the files.
	// Load verifies every link's checksum, replays full+diff, and Restore
	// swaps the state in copy-on-write.
	tm2 := core.New()
	m2 := persistmap.New[string](tm2)
	reloaded, _ := store.Load()
	m2.Restore(reloaded)
	for _, k := range []int{1, 2, 3, 4} {
		if v, ok, _ := m2.Get(k); ok {
			fmt.Printf("reloaded %d = %s\n", k, v)
		}
	}

	// Compact folds the chain back into one full backup file.
	if _, err := store.Compact(); err != nil {
		panic(err)
	}
	infos, _ := persistmap.Scan(dir)
	fmt.Printf("after compact: %d file(s), kind %s\n", len(infos), infos[0].Kind)

	// Output:
	// chain: full of 3 bindings + diff of 3 change(s)
	//   changed key 2
	//   deleted key 3
	//   added key 4
	// reloaded 1 = one
	// reloaded 2 = TWO
	// reloaded 4 = four
	// after compact: 1 file(s), kind full
}

// ExampleStore_Replay is the write-ahead-log walkthrough: attach a
// group-commit WAL to a live map so every committed write-set is fsynced
// before the commit call returns, "crash", and recover the exact
// committed state from newest checkpoint plus WAL tail — here with no
// checkpoint at all, redo alone rebuilds the map.
func ExampleStore_Replay() {
	dir, err := os.MkdirTemp("", "persistmap-wal-example-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	tm := core.New()
	m := persistmap.New[string](tm)
	store, err := persistmap.NewStore(dir, persistmap.StringCodec{})
	if err != nil {
		panic(err)
	}
	w, err := store.OpenWAL(persistmap.WALOptions{})
	if err != nil {
		panic(err)
	}
	// Durable mode: Put/Delete return only after the commit's redo record
	// hits disk. Concurrent committers share one fsync (group commit).
	m.AttachWAL(w, true)

	m.Put(1, "one")
	m.Put(2, "two")
	m.Put(2, "TWO")
	m.Delete(1)
	m.Put(3, "three")
	w.Close() // "crash": nothing survives but the files

	// Recovery in a fresh process: newest full checkpoint (none here),
	// then the WAL tail replayed in commit-version order.
	tm2 := core.New()
	m2 := persistmap.New[string](tm2)
	rs, err := persistmap.NewStore(dir, persistmap.StringCodec{})
	if err != nil {
		panic(err)
	}
	info, err := rs.Replay(m2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("replayed %d of %d record(s) from %d segment(s)\n",
		info.Applied, info.Records, info.Segments)
	for _, k := range []int{1, 2, 3} {
		if v, ok, _ := m2.Get(k); ok {
			fmt.Printf("recovered %d = %s\n", k, v)
		}
	}

	// Output:
	// replayed 5 of 5 record(s) from 1 segment(s)
	// recovered 2 = TWO
	// recovered 3 = three
}
