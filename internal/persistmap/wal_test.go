package persistmap

import (
	"errors"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/persistmap/walsync"
)

// walMap builds a tm+map+store+wal quartet on dir with the WAL attached
// in durable mode.
func walMap(t *testing.T, dir string, opts WALOptions) (*core.TM, *Map[int], *Store[int], *WAL[int]) {
	t.Helper()
	tm := core.New()
	m := New[int](tm)
	s := mustStore[int](t, dir, IntCodec{})
	w, err := s.OpenWAL(opts)
	if err != nil {
		t.Fatal(err)
	}
	m.AttachWAL(w, true)
	return tm, m, s, w
}

// replayInto recovers dir into a fresh TM and returns the map + info.
func replayInto(t *testing.T, dir string) (*Map[int], *ReplayInfo) {
	t.Helper()
	tm := core.New()
	m := New[int](tm)
	s := mustStore[int](t, dir, IntCodec{})
	info, err := s.Replay(m)
	if err != nil {
		t.Fatal(err)
	}
	return m, info
}

// mapEquals asserts the map holds exactly want.
func mapEquals(t *testing.T, m *Map[int], want map[int]int, label string) {
	t.Helper()
	for k, v := range want {
		gv, ok, err := m.Get(k)
		if err != nil || !ok || gv != v {
			t.Fatalf("%s: key %d = (%d,%v,%v), want (%d,true,nil)", label, k, gv, ok, err, v)
		}
	}
	if n, err := m.Len(); err != nil || n != len(want) {
		t.Fatalf("%s: len = (%d,%v), want %d", label, n, err, len(want))
	}
}

// TestWALReplayRoundTrip: durable commits, no checkpoint at all — replay
// must rebuild the map from the WAL tail alone.
func TestWALReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	_, m, _, w := walMap(t, dir, WALOptions{})

	want := map[int]int{}
	for k := 0; k < 40; k++ {
		if _, err := m.Put(k, 100+k); err != nil {
			t.Fatal(err)
		}
		want[k] = 100 + k
	}
	for k := 0; k < 40; k += 3 {
		if _, err := m.Delete(k); err != nil {
			t.Fatal(err)
		}
		delete(want, k)
	}
	// Overwrites must replay as the LAST write, not the first.
	for k := 1; k < 40; k += 4 {
		if _, err := m.Put(k, 9000+k); err != nil {
			t.Fatal(err)
		}
		want[k] = 9000 + k
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	m2, info := replayInto(t, dir)
	mapEquals(t, m2, want, "replayed")
	if info.ChainVersion != 0 {
		t.Fatalf("ChainVersion = %d, want 0 (no checkpoint)", info.ChainVersion)
	}
	if info.TornTail {
		t.Fatal("clean shutdown reported a torn tail")
	}
	if info.Applied != info.Records || info.Applied == 0 {
		t.Fatalf("info = %+v, want every record applied", info)
	}
	// A deleted key's absence must survive replay (regression: a replay
	// that ignored delete records would resurrect key 0).
	if _, ok, _ := m2.Get(0); ok {
		t.Fatal("deleted key 0 resurrected by replay")
	}
}

// TestWALNonDurableMode: with durable=false commits do not wait, Close
// drains the queue, and replay still recovers everything that synced.
func TestWALNonDurableMode(t *testing.T) {
	dir := t.TempDir()
	tm := core.New()
	m := New[int](tm)
	s := mustStore[int](t, dir, IntCodec{})
	w, err := s.OpenWAL(WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m.AttachWAL(w, false)
	want := map[int]int{}
	for k := 0; k < 25; k++ {
		if _, err := m.Put(k, k*k); err != nil {
			t.Fatal(err)
		}
		want[k] = k * k
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	m2, _ := replayInto(t, dir)
	mapEquals(t, m2, want, "non-durable replay")
}

// TestWALCheckpointAndTrim: a full checkpoint ages sealed segments out of
// the WAL (TrimTo), and replay composes checkpoint + remaining tail.
func TestWALCheckpointAndTrim(t *testing.T) {
	dir := t.TempDir()
	// SegmentBytes 1: every group commit seals its segment, so each
	// sequential commit lands alone in one sealed segment.
	tm, m, s, w := walMap(t, dir, WALOptions{SegmentBytes: 1})

	want := map[int]int{}
	for k := 0; k < 12; k++ {
		if _, err := m.Put(k, 500+k); err != nil {
			t.Fatal(err)
		}
		want[k] = 500 + k
	}
	pin, err := tm.PinSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	full, err := m.BackupAt(pin)
	if err != nil {
		t.Fatal(err)
	}
	pin.Release()
	if _, err := s.WriteFull(full); err != nil {
		t.Fatal(err)
	}

	// Post-checkpoint tail: new writes replay on top of the chain. Doing
	// them BEFORE the trim also guarantees the pre-checkpoint segments
	// are sealed (the daemon acks a batch before rolling its segment, so
	// trimming right after the last pre-checkpoint ack could still see
	// its segment open — a benign race for a best-effort GC, but this
	// test wants an exact count).
	for k := 6; k < 18; k++ {
		if _, err := m.Put(k, 7000+k); err != nil {
			t.Fatal(err)
		}
		want[k] = 7000 + k
	}
	if _, err := m.Delete(2); err != nil {
		t.Fatal(err)
	}
	delete(want, 2)

	removed, err := w.TrimTo(full.Version)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 12 {
		t.Fatalf("TrimTo removed %d segments, want the 12 pre-checkpoint ones", removed)
	}
	infos, err := ScanWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, wi := range infos {
		if wi.Records > 0 && wi.MaxVersion <= full.Version {
			t.Fatalf("segment %d survived TrimTo with MaxVersion %d <= %d", wi.Seq, wi.MaxVersion, full.Version)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	m2, info := replayInto(t, dir)
	mapEquals(t, m2, want, "checkpoint+tail replay")
	if info.ChainVersion != full.Version {
		t.Fatalf("ChainVersion = %d, want %d", info.ChainVersion, full.Version)
	}
	if info.Applied != 13 {
		t.Fatalf("Applied = %d, want the 13 post-checkpoint commits", info.Applied)
	}
}

// TestWALCrashLosesNothingAcked: a mid-batch kill fails the unsynced
// commit loudly, and replay recovers exactly the acked prefix.
func TestWALCrashLosesNothingAcked(t *testing.T) {
	dir := t.TempDir()
	var crashNext bool
	tm := core.New()
	m := New[int](tm)
	s := mustStore[int](t, dir, IntCodec{})
	w, err := s.OpenWAL(WALOptions{BeforeSync: func(int) bool { return crashNext }})
	if err != nil {
		t.Fatal(err)
	}
	m.AttachWAL(w, true)
	_ = tm

	want := map[int]int{}
	for k := 0; k < 9; k++ {
		if _, err := m.Put(k, 40+k); err != nil {
			t.Fatal(err)
		}
		want[k] = 40 + k
	}
	crashNext = true
	// The kill hits this commit's batch: its bytes reach the page cache,
	// the crash drops them, and the durability barrier must report that.
	if _, err := m.Put(99, 4099); !errors.Is(err, walsync.ErrClosed) {
		t.Fatalf("crashed commit returned %v, want walsync.ErrClosed", err)
	}
	if _, err := m.Put(100, 4100); !errors.Is(err, walsync.ErrClosed) {
		t.Fatalf("post-crash commit returned %v, want walsync.ErrClosed", err)
	}
	if err := w.Close(); !errors.Is(err, walsync.ErrClosed) {
		t.Fatalf("Close = %v, want walsync.ErrClosed", err)
	}

	m2, _ := replayInto(t, dir)
	mapEquals(t, m2, want, "acked prefix")
	if _, ok, _ := m2.Get(99); ok {
		t.Fatal("unacked commit 99 survived the crash")
	}
}

// TestWALTornTailStops: bytes sheared off the NEWEST segment mid-record
// replay the intact prefix and nothing past the tear.
func TestWALTornTailStops(t *testing.T) {
	dir := t.TempDir()
	_, m, _, w := walMap(t, dir, WALOptions{})
	for k := 0; k < 6; k++ {
		if _, err := m.Put(k, 10+k); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := walsync.ScanSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := segs[len(segs)-1]
	data, err := os.ReadFile(last.Path)
	if err != nil {
		t.Fatal(err)
	}
	// Shear 3 bytes: the final record loses its CRC tail.
	if err := os.WriteFile(last.Path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	m2, info := replayInto(t, dir)
	if !info.TornTail {
		t.Fatal("torn tail not reported")
	}
	if info.Applied != 5 {
		t.Fatalf("Applied = %d, want the 5 intact records", info.Applied)
	}
	want := map[int]int{}
	for k := 0; k < 5; k++ {
		want[k] = 10 + k
	}
	mapEquals(t, m2, want, "torn-tail prefix")
	if _, ok, _ := m2.Get(5); ok {
		t.Fatal("replay applied a record past the tear")
	}
}

// TestWALCorruptionRejected is the WAL counterpart of
// TestStoreCorruptionRejected: for every segment of a real log and every
// damage mode — truncations at several lengths, bit flips spread across
// header, records and trailers — VerifyWALSegment must answer ErrCorrupt,
// and Replay must never apply a byte past the first bad record:
// truncation-shaped damage recovers the intact prefix (reported torn),
// full-length corruption in a SEALED segment fails recovery outright,
// and the newest segment tolerates any shape — never a wrong binding.
func TestWALCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	// Three sealed record-bearing segments + one open empty one.
	_, m, _, w := walMap(t, dir, WALOptions{SegmentBytes: 1})
	for k := 0; k < 3; k++ {
		if _, err := m.Put(k, 60+k); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := walsync.ScanSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 4 {
		t.Fatalf("%d segments, want 4", len(segs))
	}
	pristine := make(map[string][]byte)
	for _, sg := range segs {
		data, err := os.ReadFile(sg.Path)
		if err != nil {
			t.Fatal(err)
		}
		pristine[sg.Path] = data
	}
	restore := func() {
		for path, data := range pristine {
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	newest := segs[len(segs)-1].Path
	for _, sg := range segs {
		data := pristine[sg.Path]
		type damage struct {
			label string
			bytes []byte
		}
		var cases []damage
		for _, cut := range []int{len(data) - 1, len(data) - 4, len(data) / 2, 10, 0} {
			if cut < 0 || cut >= len(data) {
				continue
			}
			cases = append(cases, damage{label: "truncate@" + itoa(cut), bytes: append([]byte{}, data[:cut]...)})
		}
		for off := 0; off < len(data); off += 1 + len(data)/13 {
			flipped := append([]byte{}, data...)
			flipped[off] ^= 0x40
			cases = append(cases, damage{label: "flip@" + itoa(off), bytes: flipped})
		}
		for _, c := range cases {
			restore()
			if err := os.WriteFile(sg.Path, c.bytes, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := VerifyWALSegment(sg.Path); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("seg %d %s: VerifyWALSegment = %v, want ErrCorrupt", sg.Seq, c.label, err)
			}
			tm2 := core.New()
			m2 := New[int](tm2)
			s2 := mustStore[int](t, dir, IntCodec{})
			info, err := s2.Replay(m2)
			// What Replay must do follows the damage classification: a
			// truncation shape (DamageTorn) is the legal residue of a
			// crash or poisoned daemon — replay the intact prefix and
			// report the tear — while full-length corruption in a SEALED
			// segment is a bit flip over acked records and must refuse
			// the log. The newest segment tolerates both shapes (a crash
			// can land garbage, not just truncate).
			tolerant, ierr := ReadWALInfo(sg.Path)
			if ierr != nil {
				t.Fatalf("seg %d %s: ReadWALInfo = %v", sg.Seq, c.label, ierr)
			}
			if sg.Path != newest && tolerant.Damage == DamageCorrupt {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("seg %d %s: Replay = %v, want ErrCorrupt", sg.Seq, c.label, err)
				}
				continue
			}
			// Tolerated damage: replay applies a clean prefix of the
			// commit order and stops at the first bad byte — never a
			// wrong binding.
			if err != nil {
				t.Fatalf("seg %d %s: Replay of damaged segment = %v", sg.Seq, c.label, err)
			}
			if !info.TornTail {
				t.Fatalf("seg %d %s: damaged segment not reported torn", sg.Seq, c.label)
			}
			for k := 0; k < 3; k++ {
				v, ok, err := m2.Get(k)
				if err != nil {
					t.Fatal(err)
				}
				if ok && v != 60+k {
					t.Fatalf("seg %d %s: key %d = %d, want %d or absent", sg.Seq, c.label, k, v, 60+k)
				}
			}
		}
	}
	restore()
	for _, sg := range segs {
		if _, err := VerifyWALSegment(sg.Path); err != nil {
			t.Fatalf("pristine segment %d: %v", sg.Seq, err)
		}
	}
	m3, _ := replayInto(t, dir)
	mapEquals(t, m3, map[int]int{0: 60, 1: 61, 2: 62}, "pristine replay")
}

// TestWALScanInfo sanity-checks the structural scan persistctl prints.
func TestWALScanInfo(t *testing.T) {
	dir := t.TempDir()
	_, m, _, w := walMap(t, dir, WALOptions{})
	for k := 0; k < 4; k++ {
		if _, err := m.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Delete(1); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	infos, err := ScanWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("%d segments, want 1", len(infos))
	}
	wi := infos[0]
	if wi.Codec != "int" || wi.Records != 5 || wi.Ops != 5 || wi.Torn {
		t.Fatalf("info = %+v, want 5 intact int records", wi)
	}
	if wi.MinVersion == 0 || wi.MaxVersion < wi.MinVersion {
		t.Fatalf("version bounds [%d,%d] implausible", wi.MinVersion, wi.MaxVersion)
	}
}
