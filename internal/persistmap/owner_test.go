package persistmap

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestForeignTxPanics: a transaction begun on a different TM than the
// map's own must be rejected at the map boundary. Letting it through
// would stamp WAL records with the wrong clock's commit versions and
// slip past the durable-ack barrier installed on the owning TM — a
// recovery corruption that only surfaces after a crash.
func TestForeignTxPanics(t *testing.T) {
	tm, other := core.New(), core.New()
	m := New[int](tm)
	if _, err := m.Put(1, 10); err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, fn func(tx *core.Tx)) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s with a foreign TM's tx did not panic", name)
			}
			if s, ok := r.(string); !ok || !strings.Contains(s, "different TM") {
				t.Fatalf("%s panic = %v, want the cross-TM message", name, r)
			}
		}()
		_ = other.Atomically(core.Classic, func(tx *core.Tx) error {
			fn(tx)
			return nil
		})
	}
	mustPanic("PutTx", func(tx *core.Tx) { m.PutTx(tx, 2, 20) })
	mustPanic("DeleteTx", func(tx *core.Tx) { m.DeleteTx(tx, 1) })
	mustPanic("GetTx", func(tx *core.Tx) { m.GetTx(tx, 1) })
	// The owning TM is unaffected by the rejected attempts.
	mapEquals(t, m, map[int]int{1: 10}, "owning TM after cross-TM rejections")
}

// TestAttachWALForeignTMPanics: one WAL serves one clock domain. A second
// map on a different TM must not be able to attach the same WAL — its
// records would interleave two clocks' version stamps in one log.
func TestAttachWALForeignTMPanics(t *testing.T) {
	dir := t.TempDir()
	_, _, _, w := walMap(t, dir, WALOptions{})
	m2 := New[int](core.New())
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("AttachWAL under a second TM did not panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "different TM") {
			t.Fatalf("AttachWAL panic = %v, want the cross-TM message", r)
		}
	}()
	m2.AttachWAL(w, false)
}

// TestDetachWALReleasesTM: detach severs the WAL's TM binding, so the
// same WAL may be legitimately re-attached under another TM afterwards
// (e.g. handing a log directory to a rebuilt domain).
func TestDetachWALReleasesTM(t *testing.T) {
	dir := t.TempDir()
	_, m, _, w := walMap(t, dir, WALOptions{})
	m.DetachWAL()
	m2 := New[int](core.New())
	m2.AttachWAL(w, false) // must not panic
	if _, err := m2.Put(5, 50); err != nil {
		t.Fatal(err)
	}
}
