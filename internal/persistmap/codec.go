package persistmap

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
)

// Codec encodes map values for the on-disk backup format. The codec's Name
// is written into every file header, making the format self-describing:
// loading a chain with a codec whose name does not match the files fails
// up front, and external tooling (cmd/persistctl) can pick the right
// built-in codec from the header alone.
//
// Append must append the encoding of v to dst and return the extended
// slice; Decode must consume exactly the bytes one Append produced (the
// store length-prefixes every record, so codecs never need framing of
// their own).
type Codec[V any] interface {
	Name() string
	Append(dst []byte, v V) ([]byte, error)
	Decode(data []byte) (V, error)
}

// IntCodec is the word fast path: values as 8-byte little-endian two's
// complement, no allocation per record.
type IntCodec struct{}

// Name implements Codec.
func (IntCodec) Name() string { return "int" }

// Append implements Codec.
func (IntCodec) Append(dst []byte, v int) ([]byte, error) {
	return binary.LittleEndian.AppendUint64(dst, uint64(v)), nil
}

// Decode implements Codec.
func (IntCodec) Decode(data []byte) (int, error) {
	if len(data) != 8 {
		return 0, fmt.Errorf("int codec: %d bytes, want 8", len(data))
	}
	return int(binary.LittleEndian.Uint64(data)), nil
}

// StringCodec is the string fast path: raw bytes, no escaping (the store's
// length prefix is the framing).
type StringCodec struct{}

// Name implements Codec.
func (StringCodec) Name() string { return "string" }

// Append implements Codec.
func (StringCodec) Append(dst []byte, v string) ([]byte, error) {
	return append(dst, v...), nil
}

// Decode implements Codec.
func (StringCodec) Decode(data []byte) (string, error) { return string(data), nil }

// BytesCodec stores []byte values verbatim. Decode copies, so the returned
// slice does not alias the file buffer.
type BytesCodec struct{}

// Name implements Codec.
func (BytesCodec) Name() string { return "bytes" }

// Append implements Codec.
func (BytesCodec) Append(dst []byte, v []byte) ([]byte, error) { return append(dst, v...), nil }

// Decode implements Codec.
func (BytesCodec) Decode(data []byte) ([]byte, error) {
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// JSONCodec is the generic fallback for arbitrary value types: one JSON
// document per record. Slower and larger than the fast paths, but it makes
// every V with exported fields durable without writing a codec.
type JSONCodec[V any] struct{}

// Name implements Codec.
func (JSONCodec[V]) Name() string { return "json" }

// Append implements Codec.
func (JSONCodec[V]) Append(dst []byte, v V) ([]byte, error) {
	enc, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(dst, enc...), nil
}

// Decode implements Codec.
func (JSONCodec[V]) Decode(data []byte) (V, error) {
	var v V
	err := json.Unmarshal(data, &v)
	return v, err
}
