package persistmap

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

func TestBackupRestoreRoundTrip(t *testing.T) {
	tm := core.New()
	m := New[int](tm)
	for k := 0; k < 100; k += 2 {
		if _, err := m.Put(k, k*k); err != nil {
			t.Fatal(err)
		}
	}
	b, err := m.Backup()
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 50 {
		t.Fatalf("backup holds %d bindings, want 50", b.Len())
	}
	if v, ok := b.Get(42); !ok || v != 42*42 {
		t.Fatalf("backup Get(42) = (%d,%v)", v, ok)
	}
	if _, ok := b.Get(43); ok {
		t.Fatal("backup Get(43) found an absent key")
	}
	// Diverge the live map, then restore.
	for k := 0; k < 100; k++ {
		if _, err := m.Put(k, -1); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Restore(b); err != nil {
		t.Fatal(err)
	}
	n, err := m.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("restored len %d, want 50", n)
	}
	for k := 0; k < 100; k += 2 {
		v, ok, err := m.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || v != k*k {
			t.Fatalf("restored Get(%d) = (%d,%v), want %d", k, v, ok, k*k)
		}
	}
	if _, ok, _ := m.Get(1); ok {
		t.Fatal("restored map holds a key the backup did not")
	}
}

// TestBackupWhileWriting is the package's reason to exist: a CHUNKED
// backup (chunk size 8, forcing dozens of pinned transactions) taken
// while 8 writers churn the map must capture exactly the state committed
// when the backup began — a single consistent cut across all chunks. The
// pre-backup state is tagged so any leakage of concurrent writes into the
// backup is detected by value. Run with -race to put the pinned chunk
// walks under the detector against record recycling.
func TestBackupWhileWriting(t *testing.T) {
	const (
		baseKeys = 200
		writers  = 8
	)
	tm := core.New()
	m := New[int](tm)
	m.chunk = 8
	if err := tm.Atomically(core.Classic, func(tx *core.Tx) error {
		for k := 0; k < baseKeys; k++ {
			m.tree.PutTx(tx, k, 7000+k)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w)*0x9e3779b97f4a7c15 + 1
			for i := 0; !stop.Load(); i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				k := int(rng % (2 * baseKeys))
				if i%4 == 0 {
					_, _ = m.Delete(k)
				} else {
					_, _ = m.Put(k, -i) // never a 7000-tagged value
				}
			}
		}(w)
	}

	for round := 0; round < 20; round++ {
		b, err := m.Backup()
		if err != nil {
			t.Fatal(err)
		}
		// Every captured binding must carry a value some committed state
		// held; 7000-tagged bindings must be self-consistent, and keys
		// must ascend strictly (one cut, no duplicated or reordered
		// chunk seams).
		prev := -1
		b.Ascend(func(k, v int) bool {
			if k <= prev {
				t.Errorf("round %d: backup keys out of order: %d after %d", round, k, prev)
				return false
			}
			prev = k
			if v >= 7000 && v != 7000+k {
				t.Errorf("round %d: key %d carries tagged value %d, want %d", round, k, v, 7000+k)
				return false
			}
			return true
		})
		if t.Failed() {
			break
		}
	}
	stop.Store(true)
	wg.Wait()
	if n := tm.Stats().Aborts[core.AbortSnapshotTooOld]; n != 0 {
		t.Fatalf("backup chunks lost their pinned version %d time(s)", n)
	}

	// With writers quiesced, a backup equals the live state and survives a
	// divergence + restore round trip.
	b, err := m.Backup()
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2*baseKeys; k++ {
		_, _ = m.Delete(k)
	}
	if err := m.Restore(b); err != nil {
		t.Fatal(err)
	}
	n, err := m.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != b.Len() {
		t.Fatalf("restored len %d, backup %d", n, b.Len())
	}
}

// abortHappyCM aborts the arbitrating transaction on every conflict, so
// any lock encountered past the spin budget forces a retry — the
// adversarial schedule for closure idempotency.
type abortHappyCM struct{}

func (abortHappyCM) Arbitrate(_, _ *core.Tx, _ int) core.Decision { return core.DecisionAbortSelf }
func (abortHappyCM) OnCommit(*core.Tx)                            {}
func (abortHappyCM) OnAbort(*core.Tx)                             {}

// TestBackupRetriesDontDuplicate is the regression fence for the
// chunk-accumulation bug: backup chunks whose snapshot transactions abort
// and retry (forced here by a zero spin budget and an abort-happy
// contention manager under writer pressure) must not duplicate bindings —
// every backup stays strictly ascending with at most one entry per key.
func TestBackupRetriesDontDuplicate(t *testing.T) {
	const baseKeys = 96
	tm := core.New(core.WithSpinBudget(0), core.WithContentionManager(abortHappyCM{}))
	m := New[int](tm)
	m.chunk = 4
	for k := 0; k < baseKeys; k++ {
		if _, err := m.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w)*0x9e3779b97f4a7c15 + 1
			for !stop.Load() {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				_, _ = m.Put(int(rng%baseKeys), int(rng))
			}
		}(w)
	}
	calls := 0
	// Force a deterministic MID-WALK retry of every chunk's first attempt,
	// after it has accumulated some (but not all) bindings: without the
	// per-attempt reset the retried attempt re-appends them.
	m.testHookChunkAttempt = func(tx *core.Tx) {
		if tx.Attempt() == 1 {
			calls++
			if calls%2 == 0 {
				tx.Restart()
			}
		}
	}
	aborts0 := tm.Stats().TotalAborts()
	for round := 0; round < 30; round++ {
		b, err := m.Backup()
		if err != nil {
			t.Fatal(err)
		}
		if b.Len() != baseKeys {
			t.Fatalf("round %d: backup holds %d bindings, want %d (duplicates or drops)", round, b.Len(), baseKeys)
		}
		prev := -1
		b.Ascend(func(k, _ int) bool {
			if k <= prev {
				t.Errorf("round %d: backup keys not strictly ascending: %d after %d", round, k, prev)
				return false
			}
			prev = k
			return true
		})
		if t.Failed() {
			break
		}
	}
	stop.Store(true)
	wg.Wait()
	if tm.Stats().TotalAborts() == aborts0 {
		t.Fatal("the forced-restart hook produced no aborts: the retry path was not exercised")
	}
}

// TestBackupSeesOneCutNotTearing pins the semantics sharply: a writer
// flips two keys between (0,1) and (1,0) — their sum is always 1 in any
// committed state — while chunk size 1 forces the two keys into separate
// backup transactions. Every backup must still see sum 1.
func TestBackupSeesOneCutNotTearing(t *testing.T) {
	tm := core.New()
	m := New[int](tm)
	m.chunk = 1
	if _, err := m.Put(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Put(1, 1); err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			_ = tm.Atomically(core.Classic, func(tx *core.Tx) error {
				a, _ := m.tree.GetTx(tx, 0)
				m.tree.PutTx(tx, 0, 1-a)
				m.tree.PutTx(tx, 1, a)
				return nil
			})
		}
	}()
	for round := 0; round < 200; round++ {
		b, err := m.Backup()
		if err != nil {
			t.Fatal(err)
		}
		a, _ := b.Get(0)
		c, _ := b.Get(1)
		if a+c != 1 {
			t.Fatalf("round %d: backup tore across chunks: (%d,%d)", round, a, c)
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestRestoreFullTxNoTearing pins the chunked-restore semantics at the
// sharpest setting, chunk size 1 (every examined key its own
// transaction): while RestoreFullTx rewrites the live map, concurrent
// readers may see each binding at its pre-restore value, its backup
// value, or appropriately absent — NEVER a torn third value, and never a
// missing key that both states bind. Afterwards the map must equal the
// backup exactly.
func TestRestoreFullTxNoTearing(t *testing.T) {
	const keys = 60
	tm := core.New()
	m := New[int](tm)
	m.chunk = 1

	// Key classes by k%3: 0 = live-only (the restore must delete it),
	// 1 = bound in both states (old 1000+k, new 2000+k), 2 = backup-only
	// (the restore must create it).
	var bKeys, bVals []int
	for k := 0; k < keys; k++ {
		if k%3 != 2 {
			if _, err := m.Put(k, 1000+k); err != nil {
				t.Fatal(err)
			}
		}
		if k%3 != 0 {
			bKeys = append(bKeys, k)
			bVals = append(bVals, 2000+k)
		}
	}
	b, err := BackupOf(1, bKeys, bVals)
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := uint64(r)*0x9e3779b97f4a7c15 + 1
			for !stop.Load() {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				k := int(rng % keys)
				var v int
				var ok bool
				if err := tm.Atomically(core.Snapshot, func(tx *core.Tx) error {
					v, ok = m.tree.GetTx(tx, k)
					return nil
				}); err != nil {
					continue
				}
				switch {
				case ok && v != 1000+k && v != 2000+k:
					t.Errorf("key %d torn to %d", k, v)
				case ok && k%3 == 0 && v != 1000+k:
					t.Errorf("live-only key %d read backup-era value %d", k, v)
				case ok && k%3 == 2 && v != 2000+k:
					t.Errorf("backup-only key %d read impossible value %d", k, v)
				case !ok && k%3 == 1:
					t.Errorf("key %d bound in both states went missing mid-restore", k)
				}
				if t.Failed() {
					return
				}
			}
		}(r)
	}

	// A few rounds: restore to the backup, then back to the original
	// state, so the readers watch transitions in both directions.
	var oKeys, oVals []int
	for k := 0; k < keys; k++ {
		if k%3 != 2 {
			oKeys = append(oKeys, k)
			oVals = append(oVals, 1000+k)
		}
	}
	orig, err := BackupOf(1, oKeys, oVals)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 6 && !t.Failed(); round++ {
		target := b
		if round%2 == 1 {
			target = orig
		}
		if err := m.RestoreFullTx(target); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Land on the backup state and verify it binding for binding.
	if err := m.RestoreFullTx(b); err != nil {
		t.Fatal(err)
	}
	if n, err := m.Len(); err != nil || n != len(bKeys) {
		t.Fatalf("restored len = (%d,%v), want %d", n, err, len(bKeys))
	}
	for i, k := range bKeys {
		v, ok, err := m.Get(k)
		if err != nil || !ok || v != bVals[i] {
			t.Fatalf("restored key %d = (%d,%v,%v), want (%d,true,nil)", k, v, ok, err, bVals[i])
		}
	}
}
