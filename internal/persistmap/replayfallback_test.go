package persistmap

import (
	"os"
	"strings"
	"testing"

	"repro/internal/core"
)

// buildFallbackDir constructs the fallback scenario on the real disk:
//
//	phase 1  keys 0,1 → 10,11   full checkpoint A
//	phase 2  key  2   → 12      diff A→B
//	phase 3  key  3   → 13      full checkpoint C
//	phase 4  key  4   → 14      (WAL only)
//
// every commit durable through a one-record-per-segment WAL. trim runs
// TrimTo(C) when set — aging phase 1–3's records out of the WAL — and
// the newest full (C) is then bit-flipped. Returns the chain dir, C's
// path, and B's version.
func buildFallbackDir(t *testing.T, trim bool) (dir, fullC string, versionB uint64) {
	t.Helper()
	dir = t.TempDir()
	tm := core.New()
	m := New[int](tm)
	s := mustStore[int](t, dir, IntCodec{})
	w, err := s.OpenWAL(WALOptions{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.AttachWAL(w, true)

	put := func(k, v int) {
		t.Helper()
		if _, err := m.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	checkpoint := func(full bool, prev *core.SnapshotPin) (*core.SnapshotPin, uint64, string) {
		t.Helper()
		pin, err := tm.PinSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		var path string
		var ver uint64
		if full {
			b, err := m.BackupAt(pin)
			if err != nil {
				t.Fatal(err)
			}
			if path, err = s.WriteFull(b); err != nil {
				t.Fatal(err)
			}
			ver = b.Version
		} else {
			d, err := m.Diff(prev, pin)
			if err != nil {
				t.Fatal(err)
			}
			if path, err = s.WriteDiff(d); err != nil {
				t.Fatal(err)
			}
			ver = d.Version
		}
		return pin, ver, path
	}

	put(0, 10)
	put(1, 11)
	pinA, _, _ := checkpoint(true, nil)
	put(2, 12)
	pinB, verB, _ := checkpoint(false, pinA)
	pinA.Release()
	put(3, 13)
	pinC, verC, pathC := checkpoint(true, nil)
	pinB.Release()
	if trim {
		if _, err := w.TrimTo(verC); err != nil {
			t.Fatal(err)
		}
	}
	put(4, 14)
	pinC.Release()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte in the middle of the newest full: checkpoint C is now
	// the corrupt file.
	data, err := os.ReadFile(pathC)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(pathC, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir, pathC, verB
}

// TestReplayFallbackCorruptNewestFull: with the newest full checkpoint
// corrupt but the WAL intact since the previous chain, recovery falls
// back to full A + diff B and re-applies the surviving records —
// recovering EVERYTHING, because every commit past B is still in the
// log. The corrupt file is reported, not fatal.
func TestReplayFallbackCorruptNewestFull(t *testing.T) {
	dir, fullC, verB := buildFallbackDir(t, false)
	tm := core.New()
	m := New[int](tm)
	s := mustStore[int](t, dir, IntCodec{})
	info, err := s.Replay(m)
	if err != nil {
		t.Fatalf("Replay with corrupt newest full = %v, want fallback", err)
	}
	if info.ChainVersion != verB {
		t.Fatalf("ChainVersion = %d, want the previous chain's %d", info.ChainVersion, verB)
	}
	if len(info.SkippedCorrupt) != 1 || !strings.Contains(info.SkippedCorrupt[0], fullC[strings.LastIndex(fullC, "/")+1:]) {
		t.Fatalf("SkippedCorrupt = %v, want exactly the damaged full %s", info.SkippedCorrupt, fullC)
	}
	mapEquals(t, m, map[int]int{0: 10, 1: 11, 2: 12, 3: 13, 4: 14}, "full fallback recovery")
}

// TestReplayFallbackAfterTrim pins the DEGRADED variant: the WAL was
// trimmed against checkpoint C before C went bad, so the records
// bridging B→C are gone. Recovery still loads — previous chain plus the
// surviving tail — and exactly the commits covered by {chain ≤ B} ∪
// {WAL > C} come back: phase 3's key is the casualty, and the non-empty
// SkippedCorrupt is the caller's signal that this recovery is partial.
func TestReplayFallbackAfterTrim(t *testing.T) {
	dir, _, verB := buildFallbackDir(t, true)
	tm := core.New()
	m := New[int](tm)
	s := mustStore[int](t, dir, IntCodec{})
	info, err := s.Replay(m)
	if err != nil {
		t.Fatalf("Replay = %v, want degraded fallback", err)
	}
	if info.ChainVersion != verB {
		t.Fatalf("ChainVersion = %d, want %d", info.ChainVersion, verB)
	}
	if len(info.SkippedCorrupt) != 1 {
		t.Fatalf("SkippedCorrupt = %v, want the damaged full", info.SkippedCorrupt)
	}
	// Key 3 was committed between B and C: its WAL record aged out with
	// TrimTo(C) and its checkpoint is the corrupt file — unrecoverable.
	// Everything else pins exactly.
	mapEquals(t, m, map[int]int{0: 10, 1: 11, 2: 12, 4: 14}, "post-trim fallback recovery")
	if _, ok, _ := m.Get(3); ok {
		t.Fatal("key 3 resurfaced: it should be the documented casualty")
	}
}
