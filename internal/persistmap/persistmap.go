// Package persistmap is the persistent-map layer over txstruct.TreeMapOf —
// the second ROADMAP workload unblocked by snapshot pinning: a live
// transactional ordered map that can be backed up while writers keep
// committing, and restored copy-on-write without disturbing readers pinned
// to older versions.
//
// A Backup is built under one SnapshotPin: the pin freezes a committed
// version of the whole TM, so the backup walks the tree in bounded CHUNKS
// — one short snapshot transaction per chunk, resuming after the last key
// — and still captures a single consistent cut, no matter how many
// updates commit between chunks. That is the property eager version
// reclamation denied: before pin-aware retirement, a reader slower than a
// few commits lost the versions it was iterating (AbortSnapshotTooOld);
// with the pin, "snapshot iteration makes cheap backups" holds at any
// size. Restore rebuilds the tree from fresh nodes (copy-on-write) inside
// one transaction, so concurrent pinned readers keep their old cut.
package persistmap

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/txstruct"
)

// DefaultChunk is how many bindings one backup transaction copies. Small
// enough that each transaction's read set stays cheap, large enough that
// chunking overhead (one pinned transaction per chunk) is negligible.
const DefaultChunk = 256

// Map is a transactional ordered map with consistent backup and restore.
// All access goes through transactions of the TM it was created on; the
// map itself is txstruct.TreeMapOf, re-exposed so callers compose map
// operations with their own transactional state.
type Map[V any] struct {
	tm   *core.TM
	tree *txstruct.TreeMapOf[V]
	// chunk is the backup chunk size; tests shrink it to force many
	// chunks over small maps.
	chunk int
	// testHookChunkAttempt, when set, runs after every binding a backup
	// chunk accumulates (inside the pinned transaction). Tests use it to
	// force deterministic mid-walk retries — the shape in which a
	// non-reset accumulator would duplicate the aborted attempt's
	// bindings; nil in production.
	testHookChunkAttempt func(tx *core.Tx)
}

// New builds an empty persistent map bound to tm.
func New[V any](tm *core.TM) *Map[V] {
	return &Map[V]{tm: tm, tree: txstruct.NewTreeMapOf[V](tm, core.Snapshot), chunk: DefaultChunk}
}

// Tree returns the underlying transactional tree for composed use inside
// the caller's own transactions.
func (m *Map[V]) Tree() *txstruct.TreeMapOf[V] { return m.tree }

// Put atomically binds key to val; it reports whether the key was new.
func (m *Map[V]) Put(key int, val V) (bool, error) { return m.tree.Put(key, val) }

// Get returns the value bound to key.
func (m *Map[V]) Get(key int) (V, bool, error) { return m.tree.Get(key) }

// Delete atomically unbinds key; it reports whether the key was present.
func (m *Map[V]) Delete(key int) (bool, error) { return m.tree.Delete(key) }

// Len returns the number of bindings as one consistent snapshot.
func (m *Map[V]) Len() (int, error) { return m.tree.Len() }

// Backup captures one consistent cut of the map: the committed state as
// of the moment the call pins the TM's version, regardless of concurrent
// updates during the copy. The walk is chunked — many short pinned
// snapshot transactions instead of one long one — so a large backup never
// holds a transaction open across the whole scan; writers are never
// aborted nor blocked by it (snapshot reads interfere with nothing).
func (m *Map[V]) Backup() (*Backup[V], error) {
	pin, err := m.tm.PinSnapshot()
	if err != nil {
		return nil, err
	}
	defer pin.Release()
	return m.BackupAt(pin)
}

// BackupAt is Backup at a pin the caller holds (and keeps holding): the
// backup chain idiom, where the pin of the last backup stays live so the
// next incremental Diff can walk both versions. The pin must belong to the
// map's TM and stays valid after the call.
func (m *Map[V]) BackupAt(pin *core.SnapshotPin) (*Backup[V], error) {
	b := &Backup[V]{Version: pin.Version()}
	lo := math.MinInt
	var chunkKeys []int
	var chunkVals []V
	var last int
	var more bool
	for {
		// The closure may run more than once (a snapshot read can abort on
		// lock contention and retry), so the chunk accumulates into
		// buffers reset at the top of every attempt and lands in the
		// backup only after the transaction committed — the same idiom as
		// TreeMapOf.Keys. Appending directly from the range callback would
		// duplicate the aborted attempt's bindings.
		err := pin.Atomically(func(tx *core.Tx) error {
			chunkKeys, chunkVals = chunkKeys[:0], chunkVals[:0]
			more = false
			m.tree.RangeTx(tx, lo, math.MaxInt, func(k int, v V) bool {
				if len(chunkKeys) == m.chunk {
					more = true
					return false
				}
				chunkKeys = append(chunkKeys, k)
				chunkVals = append(chunkVals, v)
				last = k
				if m.testHookChunkAttempt != nil {
					m.testHookChunkAttempt(tx)
				}
				return true
			})
			return nil
		})
		if err != nil {
			return nil, err
		}
		b.keys = append(b.keys, chunkKeys...)
		b.vals = append(b.vals, chunkVals...)
		if !more || last == math.MaxInt {
			return b, nil
		}
		lo = last + 1
	}
}

// Restore replaces the map's contents with the backup's, as one atomic
// copy-on-write swap: the new tree is built from fresh nodes, so readers
// pinned to pre-restore versions keep iterating the old state, and the
// restore commits or aborts as a unit. The backup remains valid and can
// be restored again (or into another Map of the same value type).
func (m *Map[V]) Restore(b *Backup[V]) error {
	return m.tm.Atomically(core.Classic, func(tx *core.Tx) error {
		m.tree.ReplaceAllTx(tx, b.keys, b.vals)
		return nil
	})
}

// RestoreTx is Restore inside the caller's transaction, composing the
// swap with other transactional state.
func (m *Map[V]) RestoreTx(tx *core.Tx, b *Backup[V]) {
	m.tree.ReplaceAllTx(tx, b.keys, b.vals)
}

// Backup is an immutable point-in-time copy of a Map: plain sorted
// parallel slices, cheap to keep, diff and re-apply. It is NOT
// transactional state — reading it needs no transaction.
type Backup[V any] struct {
	// Version is the pinned TM version the backup captured.
	Version uint64
	keys    []int
	vals    []V
}

// Len returns the number of bindings in the backup.
func (b *Backup[V]) Len() int { return len(b.keys) }

// Get returns the value bound to key in the backup.
func (b *Backup[V]) Get(key int) (V, bool) {
	i := sort.SearchInts(b.keys, key)
	if i < len(b.keys) && b.keys[i] == key {
		return b.vals[i], true
	}
	var zero V
	return zero, false
}

// Ascend visits the backup's bindings in ascending key order, stopping
// when fn returns false.
func (b *Backup[V]) Ascend(fn func(key int, val V) bool) {
	for i := range b.keys {
		if !fn(b.keys[i], b.vals[i]) {
			return
		}
	}
}
