// Package persistmap is the persistent-map layer over txstruct.TreeMapOf —
// the second ROADMAP workload unblocked by snapshot pinning: a live
// transactional ordered map that can be backed up while writers keep
// committing, and restored copy-on-write without disturbing readers pinned
// to older versions.
//
// A Backup is built under one SnapshotPin: the pin freezes a committed
// version of the whole TM, so the backup walks the tree in bounded CHUNKS
// — one short snapshot transaction per chunk, resuming after the last key
// — and still captures a single consistent cut, no matter how many
// updates commit between chunks. That is the property eager version
// reclamation denied: before pin-aware retirement, a reader slower than a
// few commits lost the versions it was iterating (AbortSnapshotTooOld);
// with the pin, "snapshot iteration makes cheap backups" holds at any
// size. Restore brings the live tree to the backup's state in bounded
// chunked transactions (RestoreFullTx; RestoreDiffTx is the incremental
// counterpart), so recovery never pays one map-sized commit; concurrent
// pinned readers keep their old cut throughout.
//
// On top of the checkpoint chain sits the write-ahead log (wal.go and the
// walsync group-commit daemon): every committed write set streams into
// CRC'd segment files and Store.Replay recovers newest-full-checkpoint +
// WAL tail, so recovery loses nothing past the last acked commit.
package persistmap

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/txstruct"
)

// DefaultChunk is how many bindings one backup transaction copies. Small
// enough that each transaction's read set stays cheap, large enough that
// chunking overhead (one pinned transaction per chunk) is negligible.
const DefaultChunk = 256

// Map is a transactional ordered map with consistent backup and restore.
// All access goes through transactions of the TM it was created on; the
// map itself is txstruct.TreeMapOf, re-exposed so callers compose map
// operations with their own transactional state.
type Map[V any] struct {
	tm   *core.TM
	tree *txstruct.TreeMapOf[V]
	// wal, when attached, receives every committed write set of the map
	// (see AttachWAL); nil keeps the map checkpoint-only.
	wal *WAL[V]
	// chunk is the backup chunk size; tests shrink it to force many
	// chunks over small maps.
	chunk int
	// testHookChunkAttempt, when set, runs after every binding a backup
	// chunk accumulates (inside the pinned transaction). Tests use it to
	// force deterministic mid-walk retries — the shape in which a
	// non-reset accumulator would duplicate the aborted attempt's
	// bindings; nil in production.
	testHookChunkAttempt func(tx *core.Tx)
}

// New builds an empty persistent map bound to tm.
func New[V any](tm *core.TM) *Map[V] {
	return &Map[V]{tm: tm, tree: txstruct.NewTreeMapOf[V](tm, core.Snapshot), chunk: DefaultChunk}
}

// Tree returns the underlying transactional tree for composed use inside
// the caller's own transactions.
func (m *Map[V]) Tree() *txstruct.TreeMapOf[V] { return m.tree }

// AttachWAL routes every subsequent committed write set of the map into
// w (opened on the same Store the map checkpoints into). With durable
// true, w.Ack is installed as the TM's durable-ack barrier: Atomically
// returns to an updating committer only after its WAL record is fsynced
// — the group-commit guarantee. With durable false the log is written
// asynchronously (commits return at memory speed, a crash may lose the
// un-synced tail, replay still recovers a clean prefix). Attach during
// setup, before concurrent use; restore and replay paths bypass the WAL
// by design (their effects are already durable, respectively being made
// durable by the source they restore from).
//
// Note durable mode installs the barrier TM-wide: every update commit on
// the TM waits on the WAL, and those that did not touch this map (no
// logged ops) pass through without blocking.
//
// Attaching binds the WAL to this map's TM: commit records are stamped
// with that TM's clock and the durable-ack barrier lives on it, so one
// WAL cannot serve maps on two different TMs (shard partitions run one
// WAL per clock domain).
func (m *Map[V]) AttachWAL(w *WAL[V], durable bool) {
	if w.tm != nil && w.tm != m.tm {
		panic("persistmap: WAL is already attached to a map on a different TM")
	}
	w.tm = m.tm
	m.wal = w
	w.durable = durable
	if durable {
		m.tm.SetDurableAck(w.Ack)
	}
}

// DetachWAL removes the attached WAL and, in durable mode, the TM's
// durable-ack barrier: subsequent commits return at memory speed and are
// not logged. This is the EXPLICIT degradation path after durability is
// lost (WALOptions.OnDurabilityLost / WAL.Err): a poisoned WAL fails
// every durable commit, and the owner chooses between stopping and
// serving on without the durability promise — this makes that choice a
// visible API call instead of an accident. Call it quiesced (no commits
// in flight), like AttachWAL.
func (m *Map[V]) DetachWAL() {
	if m.wal == nil {
		return
	}
	if m.wal.durable {
		m.tm.SetDurableAck(nil)
	}
	m.wal.tm = nil
	m.wal = nil
}

// owns panics when tx was begun on a different TM than the map's own.
// With several TMs in one process (internal/shard partitions), a foreign
// transaction would stamp WAL records with the wrong clock's versions
// and slip past the durable-ack barrier installed on m.tm — a recovery
// corruption that surfaces only after a crash. Misuse panics, like the
// core runtime's own.
func (m *Map[V]) owns(tx *core.Tx) {
	if tx.TM() != m.tm {
		panic("persistmap: transaction belongs to a different TM than this map")
	}
}

// PutTx binds key to val inside the caller's transaction, logging the
// write to the attached WAL; it reports whether the key was new. All
// writes that must survive a crash go through PutTx/DeleteTx (Put and
// Delete are their Atomically conveniences).
func (m *Map[V]) PutTx(tx *core.Tx, key int, val V) bool {
	m.owns(tx)
	inserted := m.tree.PutTx(tx, key, val)
	if m.wal != nil {
		m.wal.logOp(tx, key, val, false)
	}
	return inserted
}

// DeleteTx unbinds key inside the caller's transaction, logging the
// deletion to the attached WAL; it reports whether the key was present.
// An absent key mutates nothing and logs nothing.
func (m *Map[V]) DeleteTx(tx *core.Tx, key int) bool {
	m.owns(tx)
	removed := m.tree.DeleteTx(tx, key)
	if removed && m.wal != nil {
		var zero V
		m.wal.logOp(tx, key, zero, true)
	}
	return removed
}

// GetTx returns the value bound to key inside the caller's transaction.
func (m *Map[V]) GetTx(tx *core.Tx, key int) (V, bool) {
	m.owns(tx)
	return m.tree.GetTx(tx, key)
}

// Put atomically binds key to val; it reports whether the key was new.
func (m *Map[V]) Put(key int, val V) (inserted bool, err error) {
	err = m.tm.Atomically(core.Classic, func(tx *core.Tx) error {
		inserted = m.PutTx(tx, key, val)
		return nil
	})
	return inserted, err
}

// Get returns the value bound to key.
func (m *Map[V]) Get(key int) (V, bool, error) { return m.tree.Get(key) }

// Delete atomically unbinds key; it reports whether the key was present.
func (m *Map[V]) Delete(key int) (removed bool, err error) {
	err = m.tm.Atomically(core.Classic, func(tx *core.Tx) error {
		removed = m.DeleteTx(tx, key)
		return nil
	})
	return removed, err
}

// Len returns the number of bindings as one consistent snapshot.
func (m *Map[V]) Len() (int, error) { return m.tree.Len() }

// Backup captures one consistent cut of the map: the committed state as
// of the moment the call pins the TM's version, regardless of concurrent
// updates during the copy. The walk is chunked — many short pinned
// snapshot transactions instead of one long one — so a large backup never
// holds a transaction open across the whole scan; writers are never
// aborted nor blocked by it (snapshot reads interfere with nothing).
func (m *Map[V]) Backup() (*Backup[V], error) {
	pin, err := m.tm.PinSnapshot()
	if err != nil {
		return nil, err
	}
	defer pin.Release()
	return m.BackupAt(pin)
}

// BackupAt is Backup at a pin the caller holds (and keeps holding): the
// backup chain idiom, where the pin of the last backup stays live so the
// next incremental Diff can walk both versions. The pin must belong to the
// map's TM and stays valid after the call.
func (m *Map[V]) BackupAt(pin *core.SnapshotPin) (*Backup[V], error) {
	b := &Backup[V]{Version: pin.Version()}
	lo := math.MinInt
	var chunkKeys []int
	var chunkVals []V
	var last int
	var more bool
	for {
		// The closure may run more than once (a snapshot read can abort on
		// lock contention and retry), so the chunk accumulates into
		// buffers reset at the top of every attempt and lands in the
		// backup only after the transaction committed — the same idiom as
		// TreeMapOf.Keys. Appending directly from the range callback would
		// duplicate the aborted attempt's bindings.
		err := pin.Atomically(func(tx *core.Tx) error {
			chunkKeys, chunkVals = chunkKeys[:0], chunkVals[:0]
			more = false
			m.tree.RangeTx(tx, lo, math.MaxInt, func(k int, v V) bool {
				if len(chunkKeys) == m.chunk {
					more = true
					return false
				}
				chunkKeys = append(chunkKeys, k)
				chunkVals = append(chunkVals, v)
				last = k
				if m.testHookChunkAttempt != nil {
					m.testHookChunkAttempt(tx)
				}
				return true
			})
			return nil
		})
		if err != nil {
			return nil, err
		}
		b.keys = append(b.keys, chunkKeys...)
		b.vals = append(b.vals, chunkVals...)
		if !more || last == math.MaxInt {
			return b, nil
		}
		lo = last + 1
	}
}

// Restore replaces the map's contents with the backup's. It is
// RestoreFullTx: the live tree is brought to the backup's state in bounded
// transactions rather than one map-sized one. The backup remains valid and
// can be restored again (or into another Map of the same value type). For
// the old single-transaction atomic swap, compose RestoreTx into your own
// transaction.
func (m *Map[V]) Restore(b *Backup[V]) error {
	return m.RestoreFullTx(b)
}

// RestoreFullTx brings the LIVE map to exactly the backup's state in
// bounded transactions — at most chunk bindings examined or written per
// transaction — instead of rebuilding the whole tree inside one
// transaction whose read and write sets grow with the map (the PR 5
// restore bottleneck: one giant commit that validates and installs every
// binding at once). Two chunked passes run: a prune pass deletes live keys
// the backup does not bind, then an install pass puts every backup
// binding. Each transaction is individually atomic — a concurrent reader
// sees a consistent map whose every binding is either the pre-restore or
// the backup value, never a torn record — but the restore as a whole is
// not one atomic cut; callers needing that compose RestoreTx instead.
// Readers pinned before the restore keep their old versions throughout.
func (m *Map[V]) RestoreFullTx(b *Backup[V]) error {
	// Prune pass: chunked walk of the live tree, deleting keys absent from
	// the backup. The walk examines at most chunk live keys per
	// transaction (bounding the read set, not just the deletions) and
	// resumes after the last examined key. Candidates accumulate into a
	// buffer reset at the top of every attempt — the BackupAt retry idiom
	// — and are deleted inside the same transaction that collected them.
	lo := math.MinInt
	var doomed []int
	var last int
	var more bool
	for {
		err := m.tm.Atomically(core.Classic, func(tx *core.Tx) error {
			doomed = doomed[:0]
			more = false
			seen := 0
			m.tree.RangeTx(tx, lo, math.MaxInt, func(k int, _ V) bool {
				if seen == m.chunk {
					more = true
					return false
				}
				seen++
				last = k
				if _, ok := b.Get(k); !ok {
					doomed = append(doomed, k)
				}
				if m.testHookChunkAttempt != nil {
					m.testHookChunkAttempt(tx)
				}
				return true
			})
			for _, k := range doomed {
				m.tree.DeleteTx(tx, k)
			}
			return nil
		})
		if err != nil {
			return err
		}
		if !more || last == math.MaxInt {
			break
		}
		lo = last + 1
	}
	// Install pass: the backup's bindings land chunk by chunk. PutTx
	// overwrites in place, so bindings already at their backup value are
	// rewritten (a bounded cost) rather than read-compared.
	for start := 0; start < len(b.keys); start += m.chunk {
		end := min(start+m.chunk, len(b.keys))
		err := m.tm.Atomically(core.Classic, func(tx *core.Tx) error {
			for i := start; i < end; i++ {
				m.tree.PutTx(tx, b.keys[i], b.vals[i])
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// RestoreDiffTx applies a Diff's changes to the LIVE map in bounded
// transactions of at most chunk changes each: added and changed keys are
// put, deleted keys are deleted. Unlike Diff.Apply — the strict structural
// merge over immutable Backups — this is a redo-style blind apply: it does
// not require the live state to equal the diff's parent, which is exactly
// what write-ahead-log replay needs (each WAL record is a committed write
// set re-applied on top of whatever checkpoint recovery started from).
// Atomicity is per chunk, as with RestoreFullTx.
func (m *Map[V]) RestoreDiffTx(d *Diff[V]) error {
	for start := 0; start < len(d.keys); start += m.chunk {
		end := min(start+m.chunk, len(d.keys))
		err := m.tm.Atomically(core.Classic, func(tx *core.Tx) error {
			for i := start; i < end; i++ {
				if d.kinds[i] == txstruct.DiffDeleted {
					m.tree.DeleteTx(tx, d.keys[i])
				} else {
					m.tree.PutTx(tx, d.keys[i], d.vals[i])
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// RestoreTx rebuilds the map from the backup inside the caller's
// transaction — the one-atomic-cut variant, composing the swap with other
// transactional state. The whole backup lands in this single transaction,
// so its cost grows with the backup; prefer Restore for bulk recovery.
func (m *Map[V]) RestoreTx(tx *core.Tx, b *Backup[V]) {
	m.tree.ReplaceAllTx(tx, b.keys, b.vals)
}

// Backup is an immutable point-in-time copy of a Map: plain sorted
// parallel slices, cheap to keep, diff and re-apply. It is NOT
// transactional state — reading it needs no transaction.
type Backup[V any] struct {
	// Version is the pinned TM version the backup captured.
	Version uint64
	keys    []int
	vals    []V
}

// Len returns the number of bindings in the backup.
func (b *Backup[V]) Len() int { return len(b.keys) }

// Get returns the value bound to key in the backup.
func (b *Backup[V]) Get(key int) (V, bool) {
	i := sort.SearchInts(b.keys, key)
	if i < len(b.keys) && b.keys[i] == key {
		return b.vals[i], true
	}
	var zero V
	return zero, false
}

// Ascend visits the backup's bindings in ascending key order, stopping
// when fn returns false.
func (b *Backup[V]) Ascend(fn func(key int, val V) bool) {
	for i := range b.keys {
		if !fn(b.keys[i], b.vals[i]) {
			return
		}
	}
}
