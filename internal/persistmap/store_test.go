package persistmap

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

func mustStore[V any](t *testing.T, dir string, codec Codec[V]) *Store[V] {
	t.Helper()
	s, err := NewStore(dir, codec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func backupEqual[V comparable](t *testing.T, got, want *Backup[V], label string) {
	t.Helper()
	if got.Version != want.Version {
		t.Fatalf("%s: version %d, want %d", label, got.Version, want.Version)
	}
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d bindings, want %d", label, got.Len(), want.Len())
	}
	want.Ascend(func(k int, v V) bool {
		gv, ok := got.Get(k)
		if !ok || gv != v {
			t.Fatalf("%s: key %d = (%v,%v), want (%v,true)", label, k, gv, ok, v)
		}
		return true
	})
}

// TestStoreFullRoundTrip writes a full backup — including the empty-map
// shape — and reads it back binding for binding.
func TestStoreFullRoundTrip(t *testing.T) {
	tm := core.New()
	m := New[int](tm)
	s := mustStore[int](t, t.TempDir(), IntCodec{})

	// Empty map: a full backup with zero bindings must round-trip.
	empty, err := m.Backup()
	if err != nil {
		t.Fatal(err)
	}
	path, err := s.WriteFull(empty)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := s.ReadFull(path)
	if err != nil {
		t.Fatal(err)
	}
	backupEqual(t, loaded, empty, "empty full")

	for k := -3; k < 40; k++ {
		if _, err := m.Put(k, k*11); err != nil {
			t.Fatal(err)
		}
	}
	b, err := m.Backup()
	if err != nil {
		t.Fatal(err)
	}
	if path, err = s.WriteFull(b); err != nil {
		t.Fatal(err)
	}
	if loaded, err = s.ReadFull(path); err != nil {
		t.Fatal(err)
	}
	backupEqual(t, loaded, b, "populated full")

	info, err := ReadInfo(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != FileFull || info.Codec != "int" || info.Count != uint64(b.Len()) || info.Version != b.Version {
		t.Fatalf("info = %+v, want full/int/%d records at version %d", info, b.Len(), b.Version)
	}
	if _, err := VerifyFile(path); err != nil {
		t.Fatal(err)
	}
}

// TestStoreChainLoad builds full + 3 diffs (one of them zero-change),
// loads the chain end and every intermediate version, and checks each
// against the state pinned at that version.
func TestStoreChainLoad(t *testing.T) {
	tm := core.New()
	m := New[int](tm)
	dir := t.TempDir()
	s := mustStore[int](t, dir, IntCodec{})
	clockNoise := core.NewTypedCell(tm, 0)

	for k := 0; k < 32; k++ {
		if _, err := m.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	pin, err := tm.PinSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	full, err := m.BackupAt(pin)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteFull(full); err != nil {
		t.Fatal(err)
	}

	var checkpoints []*Backup[int]
	churn := []func(i int) error{
		func(i int) error { _, err := m.Put(i, 1000+i); return err },
		func(i int) error { _, err := m.Delete(i * 3); return err },
		func(i int) error { _, err := m.Put(100+i, i); return err },
	}
	for step := 0; step < 3; step++ {
		if step == 1 {
			// Zero-change link: advance the clock without touching the map.
			if err := tm.Atomically(core.Classic, func(tx *core.Tx) error {
				clockNoise.Store(tx, step)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		} else {
			for i := 1; i < 8; i++ {
				if err := churn[step](i); err != nil {
					t.Fatal(err)
				}
			}
		}
		next, err := tm.PinSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		d, err := m.Diff(pin, next)
		if err != nil {
			t.Fatal(err)
		}
		if step == 1 && d.Len() != 0 {
			t.Fatalf("zero-change diff has %d entries", d.Len())
		}
		if _, err := s.WriteDiff(d); err != nil {
			t.Fatal(err)
		}
		cp, err := m.BackupAt(next)
		if err != nil {
			t.Fatal(err)
		}
		checkpoints = append(checkpoints, cp)
		pin.Release()
		pin = next
	}
	defer pin.Release()

	end, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	backupEqual(t, end, checkpoints[len(checkpoints)-1], "chain end")

	for i, cp := range checkpoints {
		got, err := s.LoadVersion(cp.Version)
		if err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
		backupEqual(t, got, cp, "checkpoint")
	}
	if _, err := s.LoadVersion(full.Version); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadVersion(end.Version + 1000); err == nil {
		t.Fatal("LoadVersion reached a version the chain never captured")
	}

	// Compacting the chain must load identically to replaying it raw.
	raw, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	infos, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Kind != FileFull {
		t.Fatalf("after compact: %v, want one full backup", infos)
	}
	compacted, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	backupEqual(t, compacted, raw, "compacted")

	// Restoring the compacted load into a fresh TM equals the raw chain.
	tm2 := core.New()
	m2 := New[int](tm2)
	if err := m2.Restore(compacted); err != nil {
		t.Fatal(err)
	}
	raw.Ascend(func(k, v int) bool {
		gv, ok, err := m2.Get(k)
		if err != nil || !ok || gv != v {
			t.Fatalf("restored key %d = (%d,%v,%v), want (%d,true,nil)", k, gv, ok, err, v)
		}
		return true
	})
}

// TestStoreCorruptionRejected is the durability table test: for every file
// of a real chain and every damage mode — truncation at several lengths,
// bit flips spread across header, body and trailer — the load must fail
// with ErrCorrupt, never produce a silently wrong map.
func TestStoreCorruptionRejected(t *testing.T) {
	tm := core.New()
	m := New[int](tm)
	dir := t.TempDir()
	s := mustStore[int](t, dir, IntCodec{})

	for k := 0; k < 24; k++ {
		if _, err := m.Put(k, 7777+k); err != nil {
			t.Fatal(err)
		}
	}
	pin, err := tm.PinSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	full, err := m.BackupAt(pin)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteFull(full); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 2; step++ {
		for i := 0; i < 6; i++ {
			if _, err := m.Put(10*step+i, i-step); err != nil {
				t.Fatal(err)
			}
		}
		next, err := tm.PinSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		d, err := m.Diff(pin, next)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.WriteDiff(d); err != nil {
			t.Fatal(err)
		}
		pin.Release()
		pin = next
	}
	pin.Release()

	infos, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("chain has %d files, want 3", len(infos))
	}

	pristine := make(map[string][]byte)
	for _, fi := range infos {
		data, err := os.ReadFile(fi.Path)
		if err != nil {
			t.Fatal(err)
		}
		pristine[fi.Path] = data
	}
	restore := func() {
		for path, data := range pristine {
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	want, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}

	for _, fi := range infos {
		data := pristine[fi.Path]
		name := filepath.Base(fi.Path)
		type damage struct {
			label string
			bytes []byte
		}
		var cases []damage
		for _, cut := range []int{len(data) - 1, len(data) - 4, len(data) / 2, 10, 0} {
			if cut < 0 || cut >= len(data) {
				continue
			}
			cases = append(cases, damage{label: "truncate@" + itoa(cut), bytes: append([]byte{}, data[:cut]...)})
		}
		for off := 0; off < len(data); off += 1 + len(data)/13 {
			flipped := append([]byte{}, data...)
			flipped[off] ^= 0x40
			cases = append(cases, damage{label: "flip@" + itoa(off), bytes: flipped})
		}
		for _, c := range cases {
			restore()
			if err := os.WriteFile(fi.Path, c.bytes, 0o644); err != nil {
				t.Fatal(err)
			}
			got, err := s.Load()
			if err == nil {
				// A load that still succeeds must mean the damaged file fell
				// out of the resolved chain entirely (e.g. an unparseable
				// header) — it must NEVER be a wrong map. Scan rejects
				// damaged headers, so by construction err != nil here; keep
				// the belt anyway.
				backupEqual(t, got, want, name+" "+c.label)
				t.Fatalf("%s %s: load succeeded on a damaged chain", name, c.label)
			}
			if !errors.Is(err, ErrCorrupt) && !strings.Contains(err.Error(), "no full backup") {
				t.Fatalf("%s %s: error %v does not wrap ErrCorrupt", name, c.label, err)
			}
		}
	}
	restore()
	if got, err := s.Load(); err != nil {
		t.Fatal(err)
	} else {
		backupEqual(t, got, want, "restored pristine chain")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [24]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestStoreCodecMismatch: a chain written with one codec must refuse to
// load under another, by header name, before decoding anything.
func TestStoreCodecMismatch(t *testing.T) {
	tm := core.New()
	m := New[int](tm)
	dir := t.TempDir()
	s := mustStore[int](t, dir, IntCodec{})
	if _, err := m.Put(1, 2); err != nil {
		t.Fatal(err)
	}
	b, err := m.Backup()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteFull(b); err != nil {
		t.Fatal(err)
	}
	s2 := mustStore[string](t, dir, StringCodec{})
	if _, err := s2.Load(); err == nil || !strings.Contains(err.Error(), "codec") {
		t.Fatalf("cross-codec load: %v, want codec mismatch", err)
	}
}

// TestStoreStringAndJSONCodecs round-trips the non-word fast path and the
// generic JSON fallback.
func TestStoreStringAndJSONCodecs(t *testing.T) {
	tm := core.New()
	ms := New[string](tm)
	for k, v := range map[int]string{1: "alpha", 2: "", 3: "β-utf8", 4: strings.Repeat("x", 500)} {
		if _, err := ms.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	ss := mustStore[string](t, t.TempDir(), StringCodec{})
	b, err := ms.Backup()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ss.WriteFull(b); err != nil {
		t.Fatal(err)
	}
	got, err := ss.Load()
	if err != nil {
		t.Fatal(err)
	}
	backupEqual(t, got, b, "string codec")

	type point struct{ X, Y int }
	mj := New[point](tm)
	if _, err := mj.Put(9, point{X: 3, Y: 4}); err != nil {
		t.Fatal(err)
	}
	sj := mustStore[point](t, t.TempDir(), JSONCodec[point]{})
	bj, err := mj.Backup()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sj.WriteFull(bj); err != nil {
		t.Fatal(err)
	}
	gj, err := sj.Load()
	if err != nil {
		t.Fatal(err)
	}
	backupEqual(t, gj, bj, "json codec")
}

// TestCompactDirIsLossless: codec-agnostic compaction must carry record
// bytes verbatim — in particular, a JSON chain holding integers above
// 2^53 (which a decode-into-any round trip would mangle through float64)
// compacts byte-for-byte losslessly.
func TestCompactDirIsLossless(t *testing.T) {
	type rec struct{ ID uint64 }
	tm := core.New()
	m := New[rec](tm)
	dir := t.TempDir()
	s := mustStore[rec](t, dir, JSONCodec[rec]{})

	big := uint64(1)<<60 + 1
	if _, err := m.Put(1, rec{ID: big}); err != nil {
		t.Fatal(err)
	}
	pin, err := tm.PinSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.BackupAt(pin)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteFull(b); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Put(2, rec{ID: big + 1}); err != nil {
		t.Fatal(err)
	}
	next, err := tm.PinSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.Diff(pin, next)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteDiff(d); err != nil {
		t.Fatal(err)
	}
	pin.Release()
	next.Release()

	if _, err := CompactDir(dir); err != nil {
		t.Fatal(err)
	}
	infos, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Kind != FileFull || infos[0].Codec != "json" {
		t.Fatalf("after CompactDir: %v, want one full json backup", infos)
	}
	got, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range map[int]uint64{1: big, 2: big + 1} {
		v, ok := got.Get(k)
		if !ok || v.ID != want {
			t.Fatalf("compacted key %d = (%+v,%v), want ID %d", k, v, ok, want)
		}
	}
}

// TestChainReloadUnderFire is the PR's acceptance fence: with 8 concurrent
// committers running the whole time, a chain of one full backup plus >= 3
// incremental diffs is written to disk, reloaded, and must be binding-for-
// binding identical to a direct full backup taken at the last pin. Run
// with -race.
func TestChainReloadUnderFire(t *testing.T) {
	const committers = 8
	tm := core.New()
	m := New[int](tm)
	dir := t.TempDir()
	s := mustStore[int](t, dir, IntCodec{})

	for k := 0; k < 64; k++ {
		if _, err := m.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < committers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w)*0x9e3779b97f4a7c15 + 1
			for !stop.Load() {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				k := int(rng % 256)
				if rng&3 == 0 {
					_, _ = m.Delete(k)
				} else {
					_, _ = m.Put(k, int(rng%100000))
				}
			}
		}(w)
	}

	pin, err := tm.PinSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	full, err := m.BackupAt(pin)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteFull(full); err != nil {
		t.Fatal(err)
	}
	diffs := 0
	for diffs < 4 {
		next, err := tm.PinSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		if next.Version() == pin.Version() {
			next.Release()
			continue // no commits landed between the pins yet
		}
		d, err := m.Diff(pin, next)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.WriteDiff(d); err != nil {
			t.Fatal(err)
		}
		diffs++
		pin.Release()
		pin = next
	}
	direct, err := m.BackupAt(pin)
	if err != nil {
		t.Fatal(err)
	}
	stop.Store(true)
	wg.Wait()
	defer pin.Release()

	loaded, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	backupEqual(t, loaded, direct, "chain reload vs direct backup")

	// And the reload restores into a FRESH TM identically.
	tm2 := core.New()
	m2 := New[int](tm2)
	if err := m2.Restore(loaded); err != nil {
		t.Fatal(err)
	}
	n := 0
	direct.Ascend(func(k, v int) bool {
		gv, ok, err := m2.Get(k)
		if err != nil || !ok || gv != v {
			t.Fatalf("fresh-TM key %d = (%d,%v,%v), want (%d,true,nil)", k, gv, ok, err, v)
		}
		n++
		return true
	})
	if got, err := m2.Len(); err != nil || got != n {
		t.Fatalf("fresh-TM len = (%d,%v), want %d", got, err, n)
	}
}
