package persistmap

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/txstruct"
)

// Diff is an immutable set of binding changes between two pinned versions
// of a Map: the incremental-backup counterpart of Backup. Like Backup it is
// plain sorted data, NOT transactional state — reading it needs no
// transaction — and it is the unit the on-disk Store serializes as one
// chain link (parent FromVersion, child Version).
type Diff[V any] struct {
	// FromVersion is the older pin's version: the backup state the diff
	// applies on top of.
	FromVersion uint64
	// Version is the newer pin's version: the state reached by applying
	// the diff.
	Version uint64
	keys    []int
	kinds   []txstruct.DiffKind
	vals    []V // zero value for DiffDeleted entries
}

// Diff captures the binding changes between two pins of the map, in
// ascending key order: the merged two-version walk of
// txstruct.TreeMapOf.SnapshotDiff, materialized. Both pins must be live
// pins of the map's TM with pOld.Version() <= pNew.Version(); both stay
// valid (and held by the caller) after the call. A chain keeps the newer
// pin alive to serve as the next diff's pOld.
func (m *Map[V]) Diff(pOld, pNew *core.SnapshotPin) (*Diff[V], error) {
	d := &Diff[V]{FromVersion: pOld.Version(), Version: pNew.Version()}
	err := m.tree.SnapshotDiff(pOld, pNew, func(key int, _, new V, kind txstruct.DiffKind) bool {
		d.keys = append(d.keys, key)
		d.kinds = append(d.kinds, kind)
		d.vals = append(d.vals, new)
		return true
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// Len returns the number of binding changes in the diff.
func (d *Diff[V]) Len() int { return len(d.keys) }

// Each visits the diff's changes in ascending key order, stopping when fn
// returns false. val is the new value (V's zero for DiffDeleted).
func (d *Diff[V]) Each(fn func(key int, val V, kind txstruct.DiffKind) bool) {
	for i := range d.keys {
		if !fn(d.keys[i], d.vals[i], d.kinds[i]) {
			return
		}
	}
}

// Apply produces the Backup reached by applying the diff on top of b. The
// base must be exactly the diff's parent (b.Version == d.FromVersion), and
// every change must be structurally consistent with the base — an added
// key absent, a changed or deleted key present — so a diff applied to the
// wrong state fails loudly instead of producing a silently wrong map. b is
// not modified.
func (d *Diff[V]) Apply(b *Backup[V]) (*Backup[V], error) {
	if b.Version != d.FromVersion {
		return nil, fmt.Errorf("persistmap: diff %d→%d does not apply to backup at version %d",
			d.FromVersion, d.Version, b.Version)
	}
	out := &Backup[V]{
		Version: d.Version,
		keys:    make([]int, 0, len(b.keys)+len(d.keys)),
		vals:    make([]V, 0, len(b.vals)+len(d.keys)),
	}
	i, j := 0, 0
	for i < len(b.keys) || j < len(d.keys) {
		switch {
		case j == len(d.keys) || (i < len(b.keys) && b.keys[i] < d.keys[j]):
			out.keys = append(out.keys, b.keys[i])
			out.vals = append(out.vals, b.vals[i])
			i++
		case i == len(b.keys) || d.keys[j] < b.keys[i]:
			if d.kinds[j] != txstruct.DiffAdded {
				return nil, fmt.Errorf("persistmap: diff %d→%d %s key %d absent from base",
					d.FromVersion, d.Version, d.kinds[j], d.keys[j])
			}
			out.keys = append(out.keys, d.keys[j])
			out.vals = append(out.vals, d.vals[j])
			j++
		default: // same key
			switch d.kinds[j] {
			case txstruct.DiffChanged:
				out.keys = append(out.keys, d.keys[j])
				out.vals = append(out.vals, d.vals[j])
			case txstruct.DiffDeleted:
				// dropped
			default:
				return nil, fmt.Errorf("persistmap: diff %d→%d added key %d already in base",
					d.FromVersion, d.Version, d.keys[j])
			}
			i++
			j++
		}
	}
	return out, nil
}

// BackupOf builds a Backup directly from sorted parallel slices, for tests
// and tooling. keys must be strictly ascending and parallel to vals.
func BackupOf[V any](version uint64, keys []int, vals []V) (*Backup[V], error) {
	if len(keys) != len(vals) {
		return nil, fmt.Errorf("persistmap: %d keys, %d vals", len(keys), len(vals))
	}
	if !sort.IntsAreSorted(keys) {
		return nil, fmt.Errorf("persistmap: keys not ascending")
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] == keys[i-1] {
			return nil, fmt.Errorf("persistmap: duplicate key %d", keys[i])
		}
	}
	b := &Backup[V]{Version: version}
	b.keys = append(b.keys, keys...)
	b.vals = append(b.vals, vals...)
	return b, nil
}
