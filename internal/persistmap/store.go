package persistmap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/faultfs"
	"repro/internal/txstruct"
)

// This file is the durable half of the persistent-map layer: full backups
// and pin-to-pin diffs serialized to disk as a GENERATION CHAIN — one full
// backup plus any number of incremental diffs, each naming its parent pin
// version — and loaded back into the in-memory Backup that Restore swaps
// in copy-on-write. The single-cut guarantee a SnapshotPin gives in memory
// crosses the process boundary here, so the format is paranoid by
// construction: self-describing header, length-prefixed records, and a
// CRC32 over header and body that makes a torn, truncated or bit-flipped
// file fail the load with ErrCorrupt — never a silently half-applied map.
//
// File layout (all integers little-endian):
//
//	magic     [8]byte  "repromap"
//	format    uint16   currently 1
//	kind      uint8    1 = full backup, 2 = incremental diff
//	codec     uint8 n, [n]byte   the value codec's Name
//	version   uint64   the pin version the file captures
//	parent    uint64   diff: the parent pin version; full: == version
//	count     uint64   number of records in the body
//	body      full:  count × { key int64, len uint32, value [len]byte }
//	          diff:  count × { kind uint8, key int64,
//	                           added/changed: len uint32, value [len]byte }
//	crc       uint32   IEEE CRC32 over every preceding byte
type fileHeader struct {
	Kind    FileKind
	Codec   string
	Version uint64
	Parent  uint64
	Count   uint64
}

// FileKind distinguishes the two chain-link file types.
type FileKind uint8

const (
	// FileFull is a complete backup: the chain's base.
	FileFull FileKind = 1
	// FileDiff is an incremental pin-to-pin diff: a chain link applied on
	// top of the state at its parent version.
	FileDiff FileKind = 2
)

// String names the kind for tooling output.
func (k FileKind) String() string {
	switch k {
	case FileFull:
		return "full"
	case FileDiff:
		return "diff"
	default:
		return fmt.Sprintf("FileKind(%d)", uint8(k))
	}
}

// ErrCorrupt is wrapped by every load-path failure caused by file damage —
// checksum mismatch, truncation, bad magic, malformed records — so callers
// can distinguish "the backup is damaged" from I/O errors with errors.Is.
var ErrCorrupt = errors.New("persistmap: corrupt backup file")

// ErrNoChain marks a chain resolution that found no usable full backup at
// or below its target — the directory may be empty, hold only diffs, or
// (under a lax scan) have lost its fulls to damage. Distinguishable from
// ErrCorrupt so Replay's fallback logic can tell "nothing there" from
// "something there is broken".
var ErrNoChain = errors.New("persistmap: no full backup")

const (
	fileMagic   = "repromap"
	fileFormat  = uint16(1)
	fileExt     = ".pmb" // persistent map backup
	diffDeleted = uint8(txstruct.DiffDeleted)
)

// FileName returns the canonical chain-link name for a header: fulls are
// full-<version>, diffs diff-<parent>-<version>, both hex-padded so
// lexical order is version order.
func (h fileHeader) fileName() string {
	if h.Kind == FileFull {
		return fmt.Sprintf("full-%016x%s", h.Version, fileExt)
	}
	return fmt.Sprintf("diff-%016x-%016x%s", h.Parent, h.Version, fileExt)
}

// Store writes and loads backup chains for one map in one directory. The
// directory is the chain's identity: WriteFull starts (or restarts) a
// chain, WriteDiff extends it, Load replays the newest chain, Compact
// folds it back into a single full backup. A Store is safe for concurrent
// use only by external serialization (the backup pipeline is inherently
// sequential: each diff's parent is the previous link's pin).
type Store[V any] struct {
	dir   string
	codec Codec[V]
	fs    faultfs.FS
	// Checkpoint-write retry policy (see StoreOptions).
	writeAttempts int
	writeBackoff  time.Duration
}

// StoreOptions tunes a Store beyond its directory and codec.
type StoreOptions struct {
	// FS is the filesystem the store reads and writes through; nil means
	// the real disk (faultfs.OS). Fault-injection harnesses substitute a
	// faultfs.FaultFS here.
	FS faultfs.FS
	// WriteAttempts bounds how many times a checkpoint write
	// (WriteFull/WriteDiff/Compact's output file) is attempted before the
	// error is surfaced; <= 0 means the default (3). Retrying here is
	// SAFE, unlike in the WAL: every attempt rebuilds the entire temp
	// file from the in-memory buffer with a truncating create, so a
	// prior attempt's fate — including an fsync whose dirty pages the
	// kernel dropped — cannot leak into the bytes the successful attempt
	// lands.
	WriteAttempts int
	// WriteBackoff is the pause before retry n (scaled linearly by n);
	// <= 0 means the default (2ms).
	WriteBackoff time.Duration
}

const (
	defaultWriteAttempts = 3
	defaultWriteBackoff  = 2 * time.Millisecond
)

// NewStore opens (creating if needed) the chain directory with the given
// value codec, on the real disk with default retry policy.
func NewStore[V any](dir string, codec Codec[V]) (*Store[V], error) {
	return NewStoreWith(dir, codec, StoreOptions{})
}

// NewStoreWith is NewStore with explicit options.
func NewStoreWith[V any](dir string, codec Codec[V], opts StoreOptions) (*Store[V], error) {
	if opts.FS == nil {
		opts.FS = faultfs.OS
	}
	if opts.WriteAttempts <= 0 {
		opts.WriteAttempts = defaultWriteAttempts
	}
	if opts.WriteBackoff <= 0 {
		opts.WriteBackoff = defaultWriteBackoff
	}
	if err := opts.FS.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("persistmap: %w", err)
	}
	return &Store[V]{dir: dir, codec: codec, fs: opts.FS,
		writeAttempts: opts.WriteAttempts, writeBackoff: opts.WriteBackoff}, nil
}

// Dir returns the chain directory.
func (s *Store[V]) Dir() string { return s.dir }

// WriteFull writes b as a full backup file and returns its path. The write
// is atomic (temp file, fsync, rename): a crash mid-write leaves at most a
// temp file the loader never considers.
func (s *Store[V]) WriteFull(b *Backup[V]) (string, error) {
	h := fileHeader{Kind: FileFull, Codec: s.codec.Name(), Version: b.Version,
		Parent: b.Version, Count: uint64(len(b.keys))}
	buf, err := appendHeader(nil, h)
	if err != nil {
		return "", err
	}
	for i := range b.keys {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(b.keys[i])))
		buf, err = appendValue(buf, s.codec, b.vals[i])
		if err != nil {
			return "", err
		}
	}
	return s.writeFile(h, buf)
}

// WriteDiff writes d as an incremental chain link and returns its path. A
// diff that does not advance the version (FromVersion == Version) is
// rejected: it would make the chain ambiguous to follow.
func (s *Store[V]) WriteDiff(d *Diff[V]) (string, error) {
	if d.Version <= d.FromVersion {
		return "", fmt.Errorf("persistmap: diff version %d does not advance past parent %d",
			d.Version, d.FromVersion)
	}
	h := fileHeader{Kind: FileDiff, Codec: s.codec.Name(), Version: d.Version,
		Parent: d.FromVersion, Count: uint64(len(d.keys))}
	buf, err := appendHeader(nil, h)
	if err != nil {
		return "", err
	}
	for i := range d.keys {
		buf = append(buf, uint8(d.kinds[i]))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(d.keys[i])))
		if d.kinds[i] != txstruct.DiffDeleted {
			buf, err = appendValue(buf, s.codec, d.vals[i])
			if err != nil {
				return "", err
			}
		}
	}
	return s.writeFile(h, buf)
}

// writeFile seals buf with the trailer CRC and lands it atomically, with
// bounded retry for transient failures (ENOSPC racing a cleanup, a
// flaky device). Retrying is sound here — and ONLY here, never in the
// WAL — because every attempt rebuilds the whole temp file from buf with
// a truncating create before the rename publishes it: a previous
// attempt's failed fsync cannot have left bytes the successful attempt
// depends on.
func (s *Store[V]) writeFile(h fileHeader, buf []byte) (string, error) {
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	path := filepath.Join(s.dir, h.fileName())
	tmp := path + ".tmp"
	var err error
	for attempt := 0; attempt < s.writeAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * s.writeBackoff)
		}
		if err = s.writeFileOnce(path, tmp, buf); err == nil {
			return path, nil
		}
		// Best-effort cleanup; a leaked .tmp is inert (Scan reports it as
		// an orphan, persistctl clean removes it).
		s.fs.Remove(tmp)
	}
	return "", err
}

// writeFileOnce is one atomic-publish attempt: temp file, write, fsync,
// close, rename, directory fsync.
func (s *Store[V]) writeFileOnce(path, tmp string, buf []byte) error {
	f, err := s.fs.Create(tmp, false)
	if err != nil {
		return fmt.Errorf("persistmap: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("persistmap: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("persistmap: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persistmap: %w", err)
	}
	if err := s.fs.Rename(tmp, path); err != nil {
		return fmt.Errorf("persistmap: %w", err)
	}
	// The rename's directory entry must reach disk too: without it a
	// crash after "success" can lose the whole file, and a chain whose
	// newest diff silently vanished would load an OLDER state with no
	// error — the quiet data loss this format exists to preclude.
	return syncDirFS(s.fs, s.dir)
}

// syncDirFS fsyncs a directory, making its entries (renames, removals)
// durable. Filesystems that refuse to fsync directories surface the error
// rather than downgrading durability silently.
func syncDirFS(fsys faultfs.FS, dir string) error {
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("persistmap: sync %s: %w", dir, err)
	}
	return nil
}

func appendValue[V any](buf []byte, codec Codec[V], v V) ([]byte, error) {
	lenAt := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf, err := codec.Append(buf, v)
	if err != nil {
		return nil, fmt.Errorf("persistmap: encode: %w", err)
	}
	n := len(buf) - lenAt - 4
	if int64(n) > int64(^uint32(0)) {
		return nil, fmt.Errorf("persistmap: record of %d bytes exceeds format limit", n)
	}
	binary.LittleEndian.PutUint32(buf[lenAt:], uint32(n))
	return buf, nil
}

func appendHeader(buf []byte, h fileHeader) ([]byte, error) {
	if len(h.Codec) > 255 {
		return nil, fmt.Errorf("persistmap: codec name %q too long", h.Codec)
	}
	buf = append(buf, fileMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, fileFormat)
	buf = append(buf, uint8(h.Kind))
	buf = append(buf, uint8(len(h.Codec)))
	buf = append(buf, h.Codec...)
	buf = binary.LittleEndian.AppendUint64(buf, h.Version)
	buf = binary.LittleEndian.AppendUint64(buf, h.Parent)
	buf = binary.LittleEndian.AppendUint64(buf, h.Count)
	return buf, nil
}

// reader is a bounds-checked cursor over a verified file body; every
// overrun is an ErrCorrupt, never a panic.
type reader struct {
	data []byte
	off  int
}

func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.data) {
		return nil, fmt.Errorf("%w: record overruns file", ErrCorrupt)
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) u8() (uint8, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) u16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *reader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// openFile reads a chain file, verifies the trailer CRC over header and
// body, and returns the parsed header plus a cursor over the body. Every
// damage mode — truncation, bit flips, bad magic, unknown format — fails
// here with ErrCorrupt before a single record is decoded.
func openFile(path string) (fileHeader, *reader, error) {
	return openFileFS(faultfs.OS, path)
}

func openFileFS(fsys faultfs.FS, path string) (fileHeader, *reader, error) {
	var h fileHeader
	data, err := faultfs.ReadFile(fsys, path)
	if err != nil {
		return h, nil, fmt.Errorf("persistmap: %w", err)
	}
	if len(data) < len(fileMagic)+4 {
		return h, nil, fmt.Errorf("%w: %s: %d bytes is shorter than any valid file", ErrCorrupt, path, len(data))
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return h, nil, fmt.Errorf("%w: %s: checksum %08x, file claims %08x", ErrCorrupt, path, got, want)
	}
	r := &reader{data: body}
	magic, err := r.take(len(fileMagic))
	if err != nil || string(magic) != fileMagic {
		return h, nil, fmt.Errorf("%w: %s: bad magic", ErrCorrupt, path)
	}
	format, err := r.u16()
	if err != nil {
		return h, nil, err
	}
	if format != fileFormat {
		return h, nil, fmt.Errorf("%w: %s: format %d, this build reads %d", ErrCorrupt, path, format, fileFormat)
	}
	kind, err := r.u8()
	if err != nil {
		return h, nil, err
	}
	if FileKind(kind) != FileFull && FileKind(kind) != FileDiff {
		return h, nil, fmt.Errorf("%w: %s: unknown file kind %d", ErrCorrupt, path, kind)
	}
	nameLen, err := r.u8()
	if err != nil {
		return h, nil, err
	}
	name, err := r.take(int(nameLen))
	if err != nil {
		return h, nil, err
	}
	h.Kind = FileKind(kind)
	h.Codec = string(name)
	if h.Version, err = r.u64(); err != nil {
		return h, nil, err
	}
	if h.Parent, err = r.u64(); err != nil {
		return h, nil, err
	}
	if h.Count, err = r.u64(); err != nil {
		return h, nil, err
	}
	return h, r, nil
}

// FileInfo is the inspectable identity of one chain file, readable without
// a value codec (cmd/persistctl's currency).
type FileInfo struct {
	Path    string
	Kind    FileKind
	Codec   string
	Version uint64
	Parent  uint64
	Count   uint64
	Size    int64
}

// String renders one tooling line.
func (fi FileInfo) String() string {
	link := fmt.Sprintf("version %d", fi.Version)
	if fi.Kind == FileDiff {
		link = fmt.Sprintf("version %d→%d", fi.Parent, fi.Version)
	}
	return fmt.Sprintf("%-6s %s codec=%s records=%d bytes=%d",
		fi.Kind, link, fi.Codec, fi.Count, fi.Size)
}

// ReadInfo verifies a chain file's checksum and returns its header, codec-
// agnostically. It does not decode records; VerifyFile does the structural
// walk as well.
func ReadInfo(path string) (FileInfo, error) {
	return ReadInfoFS(faultfs.OS, path)
}

// ReadInfoFS is ReadInfo through an explicit filesystem.
func ReadInfoFS(fsys faultfs.FS, path string) (FileInfo, error) {
	h, r, err := openFileFS(fsys, path)
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{Path: path, Kind: h.Kind, Codec: h.Codec, Version: h.Version,
		Parent: h.Parent, Count: h.Count, Size: int64(len(r.data)) + 4}, nil
}

// VerifyFile is ReadInfo plus a full structural walk of the body: every
// record's framing must parse, keys must ascend strictly, and the body
// must end exactly at the declared count — all without decoding a single
// value, so it needs no codec.
func VerifyFile(path string) (FileInfo, error) {
	h, r, err := openFile(path)
	if err != nil {
		return FileInfo{}, err
	}
	info := FileInfo{Path: path, Kind: h.Kind, Codec: h.Codec, Version: h.Version,
		Parent: h.Parent, Count: h.Count, Size: int64(len(r.data)) + 4}
	prevKey, first := 0, true
	for i := uint64(0); i < h.Count; i++ {
		hasValue := true
		if h.Kind == FileDiff {
			kind, err := r.u8()
			if err != nil {
				return info, err
			}
			if kind < uint8(txstruct.DiffAdded) || kind > diffDeleted {
				return info, fmt.Errorf("%w: %s: record %d: unknown diff kind %d", ErrCorrupt, path, i, kind)
			}
			hasValue = kind != diffDeleted
		}
		keyBits, err := r.u64()
		if err != nil {
			return info, err
		}
		key := int(int64(keyBits))
		if !first && key <= prevKey {
			return info, fmt.Errorf("%w: %s: record %d: key %d out of order", ErrCorrupt, path, i, key)
		}
		prevKey, first = key, false
		if !hasValue {
			continue
		}
		n, err := r.u32()
		if err != nil {
			return info, err
		}
		if _, err := r.take(int(n)); err != nil {
			return info, err
		}
	}
	if r.off != len(r.data) {
		return info, fmt.Errorf("%w: %s: %d trailing bytes after %d records",
			ErrCorrupt, path, len(r.data)-r.off, h.Count)
	}
	return info, nil
}

// checkCodec rejects a file written with a different value codec before a
// single record is decoded with the wrong one.
func (s *Store[V]) checkCodec(path string, h fileHeader) error {
	if h.Codec != s.codec.Name() {
		return fmt.Errorf("persistmap: %s written with codec %q, store uses %q", path, h.Codec, s.codec.Name())
	}
	return nil
}

// ReadFull loads one full-backup file.
func (s *Store[V]) ReadFull(path string) (*Backup[V], error) {
	h, r, err := openFileFS(s.fs, path)
	if err != nil {
		return nil, err
	}
	if h.Kind != FileFull {
		return nil, fmt.Errorf("persistmap: %s is a %s file, not a full backup", path, h.Kind)
	}
	if err := s.checkCodec(path, h); err != nil {
		return nil, err
	}
	b := &Backup[V]{Version: h.Version}
	for i := uint64(0); i < h.Count; i++ {
		keyBits, err := r.u64()
		if err != nil {
			return nil, err
		}
		key := int(int64(keyBits))
		if len(b.keys) > 0 && key <= b.keys[len(b.keys)-1] {
			return nil, fmt.Errorf("%w: %s: key %d out of order", ErrCorrupt, path, key)
		}
		n, err := r.u32()
		if err != nil {
			return nil, err
		}
		enc, err := r.take(int(n))
		if err != nil {
			return nil, err
		}
		v, err := s.codec.Decode(enc)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: key %d: %v", ErrCorrupt, path, key, err)
		}
		b.keys = append(b.keys, key)
		b.vals = append(b.vals, v)
	}
	if r.off != len(r.data) {
		return nil, fmt.Errorf("%w: %s: %d trailing bytes", ErrCorrupt, path, len(r.data)-r.off)
	}
	return b, nil
}

// ReadDiff loads one incremental-diff file.
func (s *Store[V]) ReadDiff(path string) (*Diff[V], error) {
	h, r, err := openFileFS(s.fs, path)
	if err != nil {
		return nil, err
	}
	if h.Kind != FileDiff {
		return nil, fmt.Errorf("persistmap: %s is a %s file, not a diff", path, h.Kind)
	}
	if err := s.checkCodec(path, h); err != nil {
		return nil, err
	}
	d := &Diff[V]{FromVersion: h.Parent, Version: h.Version}
	for i := uint64(0); i < h.Count; i++ {
		kind, err := r.u8()
		if err != nil {
			return nil, err
		}
		if kind < uint8(txstruct.DiffAdded) || kind > diffDeleted {
			return nil, fmt.Errorf("%w: %s: unknown diff kind %d", ErrCorrupt, path, kind)
		}
		keyBits, err := r.u64()
		if err != nil {
			return nil, err
		}
		key := int(int64(keyBits))
		if len(d.keys) > 0 && key <= d.keys[len(d.keys)-1] {
			return nil, fmt.Errorf("%w: %s: key %d out of order", ErrCorrupt, path, key)
		}
		var v V
		if kind != diffDeleted {
			n, err := r.u32()
			if err != nil {
				return nil, err
			}
			enc, err := r.take(int(n))
			if err != nil {
				return nil, err
			}
			if v, err = s.codec.Decode(enc); err != nil {
				return nil, fmt.Errorf("%w: %s: key %d: %v", ErrCorrupt, path, key, err)
			}
		}
		d.keys = append(d.keys, key)
		d.kinds = append(d.kinds, txstruct.DiffKind(kind))
		d.vals = append(d.vals, v)
	}
	if r.off != len(r.data) {
		return nil, fmt.Errorf("%w: %s: %d trailing bytes", ErrCorrupt, path, len(r.data)-r.off)
	}
	return d, nil
}

// Scan verifies and returns the header of every chain file in the
// directory, sorted by (version, kind). A directory with no chain files is
// an empty (not an error) scan.
func Scan(dir string) ([]FileInfo, error) {
	return ScanFS(faultfs.OS, dir)
}

// ScanFS is Scan through an explicit filesystem.
func ScanFS(fsys faultfs.FS, dir string) ([]FileInfo, error) {
	infos, corrupt, err := scanLax(fsys, dir)
	if err != nil {
		return nil, err
	}
	if len(corrupt) > 0 {
		return nil, corrupt[0].Err
	}
	return infos, nil
}

// CorruptFile is one chain file a lax scan could not verify.
type CorruptFile struct {
	Path string
	Err  error
}

// ScanLax reads every chain file's header like Scan, but collects
// damaged files instead of failing on the first one — the scan tooling
// uses to render a partially damaged directory.
func ScanLax(dir string) ([]FileInfo, []CorruptFile, error) {
	return scanLax(faultfs.OS, dir)
}

// scanLax reads every chain file's header, collecting damaged files
// instead of failing the scan — the substrate of checkpoint-corruption
// fallback (Replay keeps loading around a corrupt newest full) and of
// tooling that must render a damaged directory.
func scanLax(fsys faultfs.FS, dir string) ([]FileInfo, []CorruptFile, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("persistmap: %w", err)
	}
	var infos []FileInfo
	var corrupt []CorruptFile
	for _, name := range names {
		if !strings.HasSuffix(name, fileExt) {
			continue
		}
		path := filepath.Join(dir, name)
		info, err := ReadInfoFS(fsys, path)
		if err != nil {
			corrupt = append(corrupt, CorruptFile{Path: path, Err: err})
			continue
		}
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool {
		if infos[i].Version != infos[j].Version {
			return infos[i].Version < infos[j].Version
		}
		return infos[i].Kind < infos[j].Kind
	})
	return infos, corrupt, nil
}

// Orphans lists leftover temp files (.pmb.tmp) in the directory: the
// residue of an interrupted or failed checkpoint write. They are inert —
// no loader considers them — but they hold space; persistctl's clean
// subcommand removes them.
func Orphans(dir string) ([]string, error) {
	return OrphansFS(faultfs.OS, dir)
}

// OrphansFS is Orphans through an explicit filesystem.
func OrphansFS(fsys faultfs.FS, dir string) ([]string, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("persistmap: %w", err)
	}
	var orphans []string
	for _, name := range names {
		if strings.HasSuffix(name, fileExt+".tmp") {
			orphans = append(orphans, filepath.Join(dir, name))
		}
	}
	return orphans, nil
}

// Chain resolves the newest chain in the directory: the full backup with
// the highest version, then every diff that links parent-to-child from it.
// It returns the ordered FileInfos (full first). An ambiguous chain — two
// diffs claiming the same parent — is an error rather than a guess.
func (s *Store[V]) Chain() ([]FileInfo, error) {
	infos, err := ScanFS(s.fs, s.dir)
	if err != nil {
		return nil, err
	}
	return resolveChain(infos, ^uint64(0))
}

// ResolveChain resolves the newest chain among already-scanned FileInfos —
// the codec-free half of Chain, usable by tooling that only has headers.
func ResolveChain(infos []FileInfo) ([]FileInfo, error) {
	return resolveChain(infos, ^uint64(0))
}

// resolveChain picks the newest full at or below target and follows diff
// links until target (or the chain's end when target is ^0).
func resolveChain(infos []FileInfo, target uint64) ([]FileInfo, error) {
	var full *FileInfo
	for i := range infos {
		fi := &infos[i]
		if fi.Kind == FileFull && fi.Version <= target && (full == nil || fi.Version > full.Version) {
			full = fi
		}
	}
	if full == nil {
		return nil, fmt.Errorf("%w at or below version %d", ErrNoChain, target)
	}
	chain := []FileInfo{*full}
	cur := full.Version
	for cur < target {
		var next *FileInfo
		for i := range infos {
			fi := &infos[i]
			if fi.Kind != FileDiff || fi.Parent != cur {
				continue
			}
			if fi.Version <= fi.Parent {
				return nil, fmt.Errorf("%w: %s: diff does not advance past its parent", ErrCorrupt, fi.Path)
			}
			if next != nil {
				return nil, fmt.Errorf("persistmap: ambiguous chain: %s and %s both extend version %d",
					next.Path, fi.Path, cur)
			}
			next = fi
		}
		if next == nil {
			if target == ^uint64(0) {
				break // end of chain
			}
			return nil, fmt.Errorf("persistmap: version %d unreachable: chain ends at %d", target, cur)
		}
		if target != ^uint64(0) && next.Version > target {
			return nil, fmt.Errorf("persistmap: version %d unreachable: chain jumps %d→%d",
				target, cur, next.Version)
		}
		chain = append(chain, *next)
		cur = next.Version
	}
	return chain, nil
}

// Load replays the directory's newest chain — full backup plus every
// linked diff — into a Backup at the chain's final version. Any damaged
// link fails the whole load with ErrCorrupt.
func (s *Store[V]) Load() (*Backup[V], error) {
	return s.loadTo(^uint64(0))
}

// LoadVersion replays the chain up to exactly the given pin version: the
// newest full at or below it plus the linking diffs. It fails when the
// stored chain cannot reach that exact version.
func (s *Store[V]) LoadVersion(version uint64) (*Backup[V], error) {
	return s.loadTo(version)
}

func (s *Store[V]) loadTo(target uint64) (*Backup[V], error) {
	infos, err := ScanFS(s.fs, s.dir)
	if err != nil {
		return nil, err
	}
	chain, err := resolveChain(infos, target)
	if err != nil {
		return nil, err
	}
	b, err := s.ReadFull(chain[0].Path)
	if err != nil {
		return nil, err
	}
	for _, link := range chain[1:] {
		d, err := s.ReadDiff(link.Path)
		if err != nil {
			return nil, err
		}
		if b, err = d.Apply(b); err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, link.Path, err)
		}
	}
	return b, nil
}

// rawCodec carries record payloads as opaque bytes under an arbitrary
// codec name: the substrate of codec-agnostic compaction. Values
// round-trip byte-identically — no decode, no re-encode — so compacting
// never changes a record's representation.
type rawCodec struct{ name string }

func (c rawCodec) Name() string                       { return c.name }
func (rawCodec) Append(dst, v []byte) ([]byte, error) { return append(dst, v...), nil }
func (rawCodec) Decode(data []byte) ([]byte, error)   { return append([]byte(nil), data...), nil }

// CompactDir folds the directory's newest chain into one full backup
// WITHOUT a value codec: records are carried as opaque bytes (the framing
// is codec-agnostic), so any chain — built-in or custom codec, JSON
// included — compacts losslessly, byte for byte. This is what external
// tooling (cmd/persistctl) uses; a Store owner can equally call its typed
// Compact.
func CompactDir(dir string) (string, error) {
	infos, err := Scan(dir)
	if err != nil {
		return "", err
	}
	if len(infos) == 0 {
		return "", fmt.Errorf("persistmap: %s: no chain files", dir)
	}
	name := infos[0].Codec
	for _, fi := range infos {
		if fi.Codec != name {
			return "", fmt.Errorf("persistmap: %s: mixed codecs %q and %q", dir, name, fi.Codec)
		}
	}
	s := &Store[[]byte]{dir: dir, codec: rawCodec{name: name}, fs: faultfs.OS,
		writeAttempts: defaultWriteAttempts, writeBackoff: defaultWriteBackoff}
	return s.Compact()
}

// Compact folds the newest chain into a single full backup at the chain's
// final version and removes the links it replaced, bounding both restart
// cost (one file to replay) and directory growth. The new full is written
// — and fsynced — before any old link is unlinked, so a crash mid-compact
// leaves a loadable chain at every instant. It returns the path of the
// resulting full backup.
func (s *Store[V]) Compact() (string, error) {
	chain, err := s.Chain()
	if err != nil {
		return "", err
	}
	if len(chain) == 1 {
		return chain[0].Path, nil // already a lone full backup
	}
	b, err := s.ReadFull(chain[0].Path)
	if err != nil {
		return "", err
	}
	for _, link := range chain[1:] {
		d, err := s.ReadDiff(link.Path)
		if err != nil {
			return "", err
		}
		if b, err = d.Apply(b); err != nil {
			return "", fmt.Errorf("%w: %s: %v", ErrCorrupt, link.Path, err)
		}
	}
	path, err := s.WriteFull(b)
	if err != nil {
		return "", err
	}
	for _, link := range chain {
		if link.Path == path {
			continue
		}
		if err := s.fs.Remove(link.Path); err != nil {
			return "", fmt.Errorf("persistmap: compacted but could not remove %s: %w", link.Path, err)
		}
	}
	// Make the removals durable as a unit: the new full's rename was
	// already synced (writeFile), so after this sync the directory holds
	// exactly the compacted chain — and before it, at worst the old chain
	// plus the new full, both loadable.
	if err := syncDirFS(s.fs, s.dir); err != nil {
		return "", err
	}
	return path, nil
}
