package walsync

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultfs"
)

// syncKiller fails every file fsync while armed. Arming after setup lets
// a test poison exactly the batch it chooses.
type syncKiller struct {
	mu    sync.Mutex
	armed bool
}

func (s *syncKiller) arm() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.armed = true
}

func (s *syncKiller) Fault(n int, op faultfs.OpKind, path string) *faultfs.Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.armed && op == faultfs.OpSync {
		return &faultfs.Fault{Err: faultfs.ErrIO}
	}
	return nil
}

// TestFsyncFailurePoisons is the fsyncgate regression fence: a failed
// segment fsync must fail every ack in the batch, poison the daemon
// permanently, and never be followed by an ack claiming durability for
// the dropped bytes — even though a RETRIED fsync on the same file would
// report success.
func TestFsyncFailurePoisons(t *testing.T) {
	killer := &syncKiller{}
	ffs := faultfs.New(killer)
	lost := make(chan error, 1)
	d, err := Start(Config{
		Dir:              "wal",
		Header:           []byte("HDR!"),
		FS:               ffs,
		OnDurabilityLost: func(e error) { lost <- e },
	})
	if err != nil {
		t.Fatal(err)
	}

	// One durable record before the fault.
	if err := <-d.Append([]byte("aaaa")); err != nil {
		t.Fatalf("pre-fault append: %v", err)
	}

	killer.arm()
	ack := d.Append([]byte("bbbb"))
	err = <-ack
	if !errors.Is(err, ErrDurabilityLost) || !errors.Is(err, faultfs.ErrIO) {
		t.Fatalf("poisoned ack error = %v, want ErrDurabilityLost wrapping ErrIO", err)
	}

	// The callback fired exactly once, with the same verdict.
	select {
	case e := <-lost:
		if !errors.Is(e, ErrDurabilityLost) {
			t.Fatalf("OnDurabilityLost(%v)", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnDurabilityLost never fired")
	}

	// The daemon is sticky-poisoned: Err reports it, later appends fail
	// with it, Close returns it.
	if e := d.Err(); !errors.Is(e, ErrDurabilityLost) {
		t.Fatalf("Err() = %v", e)
	}
	if e := <-d.Append([]byte("cccc")); !errors.Is(e, ErrDurabilityLost) {
		t.Fatalf("post-poison append: %v", e)
	}
	if e := d.Close(); !errors.Is(e, ErrDurabilityLost) {
		t.Fatalf("Close() = %v", e)
	}
	select {
	case <-lost:
		t.Fatal("OnDurabilityLost fired more than once")
	default:
	}

	// Binding check on the simulated platter: a crash now must show the
	// acked prefix and nothing of the failed batch. (In the fsyncgate
	// model the kernel already dropped "bbbb" — the daemon acking it
	// after an fsync retry would have been the lie.)
	img, _ := ffs.CrashImage(ffs.Ops(), 0)
	data, err := faultfs.ReadFile(img, SegmentPath("wal", 1))
	if err != nil {
		t.Fatal(err)
	}
	if got := string(data); got != "HDR!aaaa" {
		t.Fatalf("post-crash segment = %q, want %q", got, "HDR!aaaa")
	}
	if strings.Contains(string(data), "bbbb") {
		t.Fatal("dropped bytes resurfaced in the crash image")
	}
}

// TestRollFailurePoisons: failing to open the next segment is a
// durability loss too — no future record could ever be synced.
func TestRollFailurePoisons(t *testing.T) {
	ffs := faultfs.New(nil)
	d, err := Start(Config{Dir: "wal", FS: ffs, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	// SegmentBytes=1: every batch triggers a roll. Fail the roll's
	// create.
	if err := <-d.Append([]byte("a")); err != nil {
		t.Fatalf("append: %v", err)
	}
	ffs.SetInjector(failKind{kind: faultfs.OpCreate})
	// The previous roll may already have opened segment 2; this append's
	// post-batch roll hits the injected create failure.
	<-d.Append([]byte("b"))
	if e := <-d.Append([]byte("c")); !errors.Is(e, ErrDurabilityLost) {
		t.Fatalf("append after failed roll: %v", e)
	}
	if e := d.Close(); !errors.Is(e, ErrDurabilityLost) {
		t.Fatalf("Close() = %v", e)
	}
}

// failKind fails every op of one kind.
type failKind struct{ kind faultfs.OpKind }

func (f failKind) Fault(n int, op faultfs.OpKind, path string) *faultfs.Fault {
	if op == f.kind {
		return &faultfs.Fault{Err: faultfs.ErrNoSpace}
	}
	return nil
}
