package walsync

import (
	"errors"
	"os"
	"testing"
)

// collect awaits every ack in order and returns the verdicts.
func collect(chs []<-chan error) []error {
	errs := make([]error, len(chs))
	for i, ch := range chs {
		errs[i] = <-ch
	}
	return errs
}

// TestDaemonBatching drives the group-commit property deterministically:
// the BeforeSync hook parks the daemon inside the first batch's sync
// while four more records enqueue, so the second fsync must cover all
// four at once.
func TestDaemonBatching(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan int, 8)
	d, err := Start(Config{
		Dir:    t.TempDir(),
		Header: []byte("hdr"),
		BeforeSync: func(records int) bool {
			entered <- records
			<-gate
			return false
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	first := d.Append([]byte("rec-0"))
	if got := <-entered; got != 1 {
		t.Fatalf("first batch has %d records, want 1", got)
	}
	// The daemon is parked pre-fsync; these four pile up in the queue.
	var rest []<-chan error
	for i := 1; i <= 4; i++ {
		rest = append(rest, d.Append([]byte("rec-n")))
	}
	gate <- struct{}{}
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	if got := <-entered; got != 4 {
		t.Fatalf("second batch has %d records, want 4", got)
	}
	gate <- struct{}{}
	for i, err := range collect(rest) {
		if err != nil {
			t.Fatalf("record %d: %v", i+1, err)
		}
	}
	st := d.Stats()
	if st.Records != 5 || st.Batches != 2 || st.MaxBatch != 4 {
		t.Fatalf("stats = %+v, want 5 records in 2 batches, max 4", st)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDaemonMaxBatch caps the drain: with MaxBatch 2 and five queued
// records, no fsync may cover more than two.
func TestDaemonMaxBatch(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan int, 8)
	d, err := Start(Config{
		Dir:      t.TempDir(),
		MaxBatch: 2,
		BeforeSync: func(records int) bool {
			entered <- records
			<-gate
			return false
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	first := d.Append([]byte("a"))
	if got := <-entered; got != 1 {
		t.Fatalf("first batch has %d records, want 1", got)
	}
	var rest []<-chan error
	for i := 0; i < 5; i++ {
		rest = append(rest, d.Append([]byte("b")))
	}
	gate <- struct{}{}
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	for drained := 0; drained < 5; {
		n := <-entered
		if n > 2 {
			t.Fatalf("batch of %d records exceeds MaxBatch 2", n)
		}
		drained += n
		gate <- struct{}{}
	}
	for _, err := range collect(rest) {
		if err != nil {
			t.Fatal(err)
		}
	}
	if st := d.Stats(); st.MaxBatch > 2 {
		t.Fatalf("stats.MaxBatch = %d, want <= 2", st.MaxBatch)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDaemonRollAndRestart seals a segment per record (SegmentBytes 1),
// then restarts the daemon and checks it opens a FRESH segment after the
// highest on disk instead of appending to a crashed tail.
func TestDaemonRollAndRestart(t *testing.T) {
	dir := t.TempDir()
	hdr := []byte("H")
	d, err := Start(Config{Dir: dir, Header: hdr, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := <-d.Append([]byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := ScanSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Each record rolled the segment it landed in, so records sit in
	// segments 1..3 and segment 4 is the open-but-empty one.
	if len(segs) != 4 {
		t.Fatalf("%d segments, want 4", len(segs))
	}
	for i, sg := range segs {
		data, err := os.ReadFile(sg.Path)
		if err != nil {
			t.Fatal(err)
		}
		want := string(hdr)
		if i < 3 {
			want += string(byte('a' + i))
		}
		if string(data) != want {
			t.Fatalf("segment %d = %q, want %q", sg.Seq, data, want)
		}
	}

	d2, err := Start(Config{Dir: dir, Header: hdr, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.CurrentSeq(); got != 5 {
		t.Fatalf("restart opened segment %d, want 5", got)
	}
	if err := <-d2.Append([]byte("z")); err != nil {
		t.Fatal(err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	// The pre-restart segments are byte-identical — never appended to.
	for i, sg := range segs[:3] {
		data, err := os.ReadFile(sg.Path)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(hdr)+string(byte('a'+i)) {
			t.Fatalf("restart touched sealed segment %d", sg.Seq)
		}
	}
}

// TestDaemonCrashTruncates injects a kill mid-batch and checks the three
// crash promises: unsynced bytes vanish (the file reverts to its synced
// prefix), the in-flight and queued committers get ErrClosed, and the
// daemon refuses everything afterwards.
func TestDaemonCrashTruncates(t *testing.T) {
	dir := t.TempDir()
	hdr := []byte("HH")
	crashNext := false
	d, err := Start(Config{
		Dir:        dir,
		Header:     hdr,
		BeforeSync: func(int) bool { return crashNext },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-d.Append([]byte("keep")); err != nil {
		t.Fatal(err)
	}
	crashNext = true
	if err := <-d.Append([]byte("lost")); !errors.Is(err, ErrClosed) {
		t.Fatalf("crashed batch acked %v, want ErrClosed", err)
	}
	if err := <-d.Append([]byte("after")); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-crash append acked %v, want ErrClosed", err)
	}
	if err := d.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Close = %v, want ErrClosed", err)
	}
	data, err := os.ReadFile(SegmentPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(hdr)+"keep" {
		t.Fatalf("segment after crash = %q, want synced prefix %q", data, string(hdr)+"keep")
	}
}

// TestScanSegmentsRejectsStrays: a .wal file the daemon did not name is an
// error, not a silent skip.
func TestScanSegmentsRejectsStrays(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(dir+"/stray.wal", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ScanSegments(dir); err == nil {
		t.Fatal("ScanSegments accepted a stray .wal name")
	}
}
