package walsync

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/faultfs"
)

// syncStaller stalls exactly one armed fsync (no error), signalling the
// test the moment the stall begins.
type syncStaller struct {
	mu      sync.Mutex
	armed   bool
	started chan struct{}
	stall   time.Duration
}

func (s *syncStaller) arm() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.armed = true
}

func (s *syncStaller) Fault(n int, op faultfs.OpKind, path string) *faultfs.Fault {
	if op != faultfs.OpSync {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.armed {
		return nil
	}
	s.armed = false
	close(s.started)
	return &faultfs.Fault{Delay: s.stall}
}

// TestGroupCommitBackpressureUnderSyncStall is the slow-disk regression
// fence: an fsync stall must translate into backpressure — records
// arriving during the stalled sync queue up and are covered by ONE later
// fsync — and never into an error, a dropped ack, or a lost record. The
// stalled schedule is exactly the condition group commit exists for, so
// the batch formed behind the stall is the test's witness.
func TestGroupCommitBackpressureUnderSyncStall(t *testing.T) {
	staller := &syncStaller{started: make(chan struct{}), stall: 80 * time.Millisecond}
	ffs := faultfs.New(staller)
	d, err := Start(Config{Dir: "wal", Header: []byte("HDR!"), FS: ffs})
	if err != nil {
		t.Fatal(err)
	}

	// One durable record before the stall.
	if err := <-d.Append([]byte("a0a0")); err != nil {
		t.Fatalf("pre-stall append: %v", err)
	}

	// Arm, append the record whose fsync will stall, and wait until the
	// stall is underway (the injector signals from inside the sync).
	staller.arm()
	acks := []<-chan error{d.Append([]byte("a1a1"))}
	<-staller.started

	// These three arrive while the fsync is stalled: the daemon must hold
	// them and cover all of them with the next sync.
	for i := 0; i < 3; i++ {
		acks = append(acks, d.Append([]byte(fmt.Sprintf("b%db%d", i, i))))
	}
	for i, ch := range acks {
		if err := <-ch; err != nil {
			t.Fatalf("ack %d under stall: %v", i, err)
		}
	}

	st := d.Stats()
	if st.Records != 5 {
		t.Fatalf("synced records = %d, want 5", st.Records)
	}
	if st.MaxBatch < 3 {
		t.Fatalf("max batch = %d, want >= 3 (the stall-backed batch)", st.MaxBatch)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Every byte is durable in append order: a crash right now loses
	// nothing.
	img, _ := ffs.CrashImage(ffs.Ops(), 0)
	data, err := faultfs.ReadFile(img, SegmentPath("wal", 1))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(data), "HDR!a0a0a1a1b0b0b1b1b2b2"; got != want {
		t.Fatalf("post-stall segment = %q, want %q", got, want)
	}
}
