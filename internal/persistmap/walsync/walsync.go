// Package walsync is the group-commit daemon under persistmap's
// write-ahead log: a single goroutine that drains an append queue of
// opaque, already-framed records into segment files, batches every record
// that arrived while the previous fsync was in flight into ONE fsync, and
// acknowledges each committer only once its record is durable. That
// batching is the whole point — with N goroutines committing
// concurrently, the fsync cost is paid once per batch instead of once per
// commit, which is what makes always-on durability affordable.
//
// The daemon is deliberately format-agnostic: persistmap owns the record
// framing and the per-segment header bytes; walsync owns files, batching,
// fsync, acknowledgement and segment rolling. Segments are named
// wal-<seq>.wal with the sequence hex-padded so lexical order is append
// order; a restarted daemon never appends to an existing segment — it
// starts a fresh one after the highest sequence on disk, leaving crashed
// tails untouched for recovery to read.
package walsync

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/faultfs"
)

// Ext is the segment file extension. persistmap's checkpoint chain uses
// .pmb in the same directory; the distinct extension keeps each scanner
// blind to the other's files.
const Ext = ".wal"

// ErrClosed is returned on appends to (and pending acks of) a daemon that
// has shut down — including a crash injected by the BeforeSync test hook,
// whose unsynced records are gone and must not be acknowledged.
var ErrClosed = errors.New("walsync: daemon closed")

// ErrDurabilityLost marks a poisoned daemon: a write or fsync on the open
// segment failed, so the segment's tail is in an unknown state and no
// further record can ever be promised durable through it. The failed
// batch, everything queued behind it, and every later Append all fail
// with an error wrapping both this sentinel and the root cause.
//
// The one thing a poisoned daemon must NEVER do is retry the fsync and
// ack on success: after a failed fsync the kernel may have dropped the
// dirty pages, so the retry "succeeds" over data that no longer exists
// (the fsyncgate failure mode). Recovery is a process-level decision —
// keep serving non-durably (detach the WAL) or stop — made explicitly by
// the owner, typically from the OnDurabilityLost callback.
var ErrDurabilityLost = errors.New("walsync: durability lost")

// Config parameterizes a daemon.
type Config struct {
	// Dir is the segment directory (created if needed).
	Dir string
	// Header is written verbatim at the head of every new segment; the
	// format above it belongs to the caller.
	Header []byte
	// SegmentBytes is the roll threshold: after a sync that leaves the
	// open segment at or beyond it, the segment is sealed and a new one
	// started. <= 0 means the default (4 MiB).
	SegmentBytes int64
	// MaxBatch caps how many queued records one fsync covers; 0 is
	// unbounded (drain everything queued). The bench sweeps this knob.
	MaxBatch int
	// BeforeSync, when set, runs after a batch's bytes are written but
	// BEFORE their fsync; returning true injects a crash: the open
	// segment is truncated back to its synced prefix (the page-cache
	// bytes a real kill would lose), every unacked committer gets
	// ErrClosed, and the daemon shuts down. Test and storm hook; nil in
	// production.
	BeforeSync func(records int) bool
	// FS is the filesystem the daemon writes through; nil means the real
	// disk (faultfs.OS). Fault-injection harnesses substitute a
	// faultfs.FaultFS here.
	FS faultfs.FS
	// OnDurabilityLost, when set, is called exactly once — from the
	// daemon goroutine — when the daemon poisons itself after a failed
	// write or fsync (see ErrDurabilityLost). The owner decides there
	// whether to degrade to non-durable serving or stop.
	OnDurabilityLost func(error)
}

// defaultSegmentBytes is the roll threshold when Config leaves it unset.
const defaultSegmentBytes = 4 << 20

// Stats is a snapshot of the daemon's group-commit counters.
type Stats struct {
	// Records is how many records were durably synced; Batches how many
	// fsyncs covered them. Records/Batches is the achieved group size.
	Records, Batches uint64
	// MaxBatch is the largest single batch synced.
	MaxBatch int
	// Segments is how many segments the daemon has opened (sealed + open).
	Segments int
	// Bytes counts record bytes written (headers excluded).
	Bytes int64
}

// pending is one queued record with its acknowledgement channel.
type pending struct {
	rec []byte
	ack chan error
}

// Daemon is the group-commit goroutine plus its queue. Append may be
// called from any number of goroutines; Close waits for the queue to
// drain.
type Daemon struct {
	cfg Config

	mu      sync.Mutex
	queue   []pending
	closing bool
	closed  bool
	stats   Stats
	seq     uint64 // open segment's sequence
	poison  error  // set once when durability is lost; sticky

	wake chan struct{}
	done chan struct{}

	// Loop-goroutine state: the open segment file, its total and synced
	// sizes. Only the loop touches these after Start.
	f          faultfs.File
	size       int64
	syncedSize int64

	finalErr error
}

// SegmentPath returns the canonical path of segment seq under dir.
func SegmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x%s", seq, Ext))
}

// Segment identifies one on-disk segment file.
type Segment struct {
	Seq  uint64
	Path string
}

// ScanSegments lists the directory's WAL segments in sequence order.
// Files with the extension but an unparsable name are an error — a WAL
// directory is append-only machinery, not a dumping ground.
func ScanSegments(dir string) ([]Segment, error) {
	return ScanSegmentsFS(faultfs.OS, dir)
}

// ScanSegmentsFS is ScanSegments through an explicit filesystem.
func ScanSegmentsFS(fsys faultfs.FS, dir string) ([]Segment, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("walsync: %w", err)
	}
	var segs []Segment
	for _, name := range names {
		if !strings.HasSuffix(name, Ext) {
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(name, "wal-%016x"+Ext, &seq); err != nil {
			return nil, fmt.Errorf("walsync: unrecognized segment name %q", name)
		}
		segs = append(segs, Segment{Seq: seq, Path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Seq < segs[j].Seq })
	return segs, nil
}

// Start opens a fresh segment after the highest sequence already in Dir
// and launches the group-commit goroutine. Existing segments are never
// appended to: a crashed tail stays exactly as the crash left it.
func Start(cfg Config) (*Daemon, error) {
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = defaultSegmentBytes
	}
	if cfg.FS == nil {
		cfg.FS = faultfs.OS
	}
	if err := cfg.FS.MkdirAll(cfg.Dir); err != nil {
		return nil, fmt.Errorf("walsync: %w", err)
	}
	segs, err := ScanSegmentsFS(cfg.FS, cfg.Dir)
	if err != nil {
		return nil, err
	}
	seq := uint64(1)
	if n := len(segs); n > 0 {
		seq = segs[n-1].Seq + 1
	}
	d := &Daemon{cfg: cfg, seq: seq, wake: make(chan struct{}, 1), done: make(chan struct{})}
	if err := d.openSegment(seq); err != nil {
		return nil, err
	}
	go d.loop()
	return d, nil
}

// openSegment creates segment seq, writes and fsyncs the caller's header,
// and fsyncs the directory so the new entry survives a crash.
func (d *Daemon) openSegment(seq uint64) error {
	path := SegmentPath(d.cfg.Dir, seq)
	f, err := d.cfg.FS.Create(path, true)
	if err != nil {
		return fmt.Errorf("walsync: %w", err)
	}
	if len(d.cfg.Header) > 0 {
		if _, err := f.Write(d.cfg.Header); err != nil {
			f.Close()
			return fmt.Errorf("walsync: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("walsync: %w", err)
	}
	if err := d.cfg.FS.SyncDir(d.cfg.Dir); err != nil {
		f.Close()
		return fmt.Errorf("walsync: sync %s: %w", d.cfg.Dir, err)
	}
	d.f = f
	d.size = int64(len(d.cfg.Header))
	d.syncedSize = d.size
	d.mu.Lock()
	d.seq = seq
	d.stats.Segments++
	d.mu.Unlock()
	return nil
}

// Append enqueues one framed record and returns the channel its
// durability verdict arrives on: nil once the record is fsynced, an error
// if it never will be. The channel is buffered — a caller that does not
// care (buffered, non-durable mode) may simply drop it.
func (d *Daemon) Append(rec []byte) <-chan error {
	ack := make(chan error, 1)
	d.mu.Lock()
	if d.closing || d.closed {
		err := d.poison
		d.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		ack <- err
		return ack
	}
	d.queue = append(d.queue, pending{rec: rec, ack: ack})
	d.mu.Unlock()
	select {
	case d.wake <- struct{}{}:
	default:
	}
	return ack
}

// CurrentSeq returns the open segment's sequence. Sealed segments (every
// sequence below it) are safe to prune once a checkpoint covers them.
func (d *Daemon) CurrentSeq() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.seq
}

// Stats returns a snapshot of the group-commit counters.
func (d *Daemon) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Err reports the daemon's poison state: nil while healthy (or after a
// clean close), or the ErrDurabilityLost-wrapping error once a write or
// fsync failure has poisoned it.
func (d *Daemon) Err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.poison
}

// Close drains the queue, fsyncs and closes the open segment, and stops
// the daemon. Appends racing with Close get ErrClosed.
func (d *Daemon) Close() error {
	d.mu.Lock()
	if d.closing || d.closed {
		d.mu.Unlock()
		<-d.done
		return d.finalErr
	}
	d.closing = true
	d.mu.Unlock()
	select {
	case d.wake <- struct{}{}:
	default:
	}
	<-d.done
	return d.finalErr
}

// loop is the group-commit goroutine: drain a batch, write it, (crash
// hook), fsync once, ack everyone in it, roll if the segment is full.
func (d *Daemon) loop() {
	defer close(d.done)
	for {
		d.mu.Lock()
		if len(d.queue) == 0 {
			if d.closing {
				d.closed = true
				d.mu.Unlock()
				d.finalErr = d.shutdown(nil)
				return
			}
			d.mu.Unlock()
			<-d.wake
			continue
		}
		n := len(d.queue)
		if d.cfg.MaxBatch > 0 && n > d.cfg.MaxBatch {
			n = d.cfg.MaxBatch
		}
		batch := make([]pending, n)
		copy(batch, d.queue)
		rest := d.queue[n:]
		d.queue = append(d.queue[:0:0], rest...)
		d.mu.Unlock()

		var werr error
		for _, p := range batch {
			if werr == nil {
				var wn int
				wn, werr = d.f.Write(p.rec)
				d.size += int64(wn)
			}
		}
		if werr == nil && d.cfg.BeforeSync != nil && d.cfg.BeforeSync(len(batch)) {
			// Injected mid-batch kill: the batch's bytes reached the page
			// cache but not the platter. Truncating back to the synced
			// prefix is exactly what the machine losing power would do to
			// them; the committers parked on these acks must see failure,
			// not silence.
			d.crash(batch)
			return
		}
		if werr == nil {
			werr = d.f.Sync()
		}
		if werr != nil {
			// A write or fsync failure leaves the segment's tail in an
			// unknown state — after a failed fsync the kernel may already
			// have dropped the dirty pages, so retrying the fsync and
			// acking on "success" would claim durability for lost bytes
			// (fsyncgate). The only sound move is to poison: fail this
			// batch and everything after it, permanently.
			d.poisonAll(batch, werr)
			return
		}
		d.syncedSize = d.size
		d.mu.Lock()
		d.stats.Batches++
		d.stats.Records += uint64(len(batch))
		if len(batch) > d.stats.MaxBatch {
			d.stats.MaxBatch = len(batch)
		}
		for _, p := range batch {
			d.stats.Bytes += int64(len(p.rec))
		}
		seq := d.seq
		d.mu.Unlock()
		for _, p := range batch {
			p.ack <- nil
		}
		if d.size >= d.cfg.SegmentBytes {
			if err := d.roll(seq); err != nil {
				// No further record can ever be made durable: poison.
				d.poisonAll(nil, err)
				return
			}
		}
	}
}

// roll seals the open segment (its bytes are already synced) and opens
// the next one.
func (d *Daemon) roll(seq uint64) error {
	if err := d.f.Close(); err != nil {
		return fmt.Errorf("walsync: %w", err)
	}
	return d.openSegment(seq + 1)
}

// shutdown finishes a clean close: the queue is empty, the segment
// synced.
func (d *Daemon) shutdown(err error) error {
	if serr := d.f.Sync(); err == nil && serr != nil {
		err = fmt.Errorf("walsync: %w", serr)
	}
	if cerr := d.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("walsync: %w", cerr)
	}
	return err
}

// crash implements the injected kill: revert the open segment to its
// synced prefix, fail the in-flight batch and everything still queued,
// and stop.
func (d *Daemon) crash(batch []pending) {
	d.f.Truncate(d.syncedSize)
	d.f.Sync()
	d.f.Close()
	d.size = d.syncedSize
	d.mu.Lock()
	d.closed = true
	q := d.queue
	d.queue = nil
	d.mu.Unlock()
	for _, p := range batch {
		p.ack <- ErrClosed
	}
	for _, p := range q {
		p.ack <- ErrClosed
	}
	d.finalErr = ErrClosed
}

// poisonAll marks the daemon permanently poisoned with cause, reports the
// wrapped error to the failed batch, everything queued, and Close, and
// notifies OnDurabilityLost. The open segment is closed WITHOUT a retry
// fsync — its tail stays whatever the kernel left.
func (d *Daemon) poisonAll(batch []pending, cause error) {
	err := fmt.Errorf("%w: %w", ErrDurabilityLost, cause)
	d.mu.Lock()
	d.closed = true
	d.poison = err
	q := d.queue
	d.queue = nil
	d.mu.Unlock()
	for _, p := range batch {
		p.ack <- err
	}
	for _, p := range q {
		p.ack <- err
	}
	d.f.Close()
	d.finalErr = err
	if d.cfg.OnDurabilityLost != nil {
		d.cfg.OnDurabilityLost(err)
	}
}
