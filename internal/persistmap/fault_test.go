package persistmap

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultfs"
)

// checkpointRun is one deterministic checkpoint script's outcome: the map
// state at each SUCCESSFUL persist step, the state the FAILED step was
// trying to persist (nil if none failed), and the step's error.
type checkpointRun struct {
	states    []map[int]int
	attempted map[int]int
	err       error
}

// runCheckpointScript drives a fixed full+2-diffs+compact checkpoint
// sequence against fsys, stopping at the first persist error. The script
// is deterministic, so a clean run's fallible-op count indexes every
// fault point for the table test.
func runCheckpointScript(t *testing.T, fsys faultfs.FS, opts StoreOptions) checkpointRun {
	t.Helper()
	opts.FS = fsys
	tm := core.New()
	m := New[int](tm)
	s, err := NewStoreWith("chain", IntCodec{}, opts)
	if err != nil {
		return checkpointRun{err: err}
	}
	capture := func() map[int]int {
		state := map[int]int{}
		if err := tm.Atomically(core.Snapshot, func(tx *core.Tx) error {
			clear(state)
			m.Tree().AscendTx(tx, func(k, v int) bool {
				state[k] = v
				return true
			})
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return state
	}
	var run checkpointRun
	for k := 0; k < 8; k++ {
		if _, err := m.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	pin, err := tm.PinSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { pin.Release() }()
	b, err := m.BackupAt(pin)
	if err != nil {
		t.Fatal(err)
	}
	snap := capture()
	if _, err := s.WriteFull(b); err != nil {
		return checkpointRun{attempted: snap, err: err}
	}
	run.states = append(run.states, snap)
	for r := 0; r < 2; r++ {
		if _, err := m.Put(100+r, r); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Delete(r); err != nil {
			t.Fatal(err)
		}
		next, err := tm.PinSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		d, err := m.Diff(pin, next)
		if err != nil {
			t.Fatal(err)
		}
		snap = capture()
		if _, err := s.WriteDiff(d); err != nil {
			next.Release()
			run.attempted, run.err = snap, err
			return run
		}
		run.states = append(run.states, snap)
		pin.Release()
		pin = next
	}
	if _, err := s.Compact(); err != nil {
		// Compaction rewrites the SAME state the chain already holds.
		run.attempted, run.err = run.states[len(run.states)-1], err
		return run
	}
	return run
}

// stateEquals reports whether a loaded backup holds exactly want.
func stateEquals(b *Backup[int], want map[int]int) bool {
	if b.Len() != len(want) {
		return false
	}
	for k, v := range want {
		if gv, ok := b.Get(k); !ok || gv != v {
			return false
		}
	}
	return true
}

// TestCheckpointFaultTable injects ENOSPC, EIO and short writes at EVERY
// fallible filesystem operation of a checkpoint script and holds the
// chain directory to its availability contract: whatever the failure
// point, a fresh Store must still resolve and load the chain — the state
// of the last successful (or errored-but-published) persist step, never
// ErrCorrupt, never a silently shorter map. Temp files may leak; Orphans
// must report them and removing them must not change what loads.
func TestCheckpointFaultTable(t *testing.T) {
	// Clean run: count the fault points and pin the final state.
	counter := faultfs.New(nil)
	clean := runCheckpointScript(t, counter, StoreOptions{WriteAttempts: 1, WriteBackoff: time.Nanosecond})
	if clean.err != nil {
		t.Fatalf("clean run failed: %v", clean.err)
	}
	n := counter.Fallible()
	if n < 15 {
		t.Fatalf("only %d fallible ops in the script — the table would be hollow", n)
	}

	faults := []struct {
		label string
		f     faultfs.Fault
	}{
		{"enospc-short", faultfs.Fault{Err: faultfs.ErrNoSpace, Short: -1}},
		{"eio", faultfs.Fault{Err: faultfs.ErrIO}},
	}
	for _, fc := range faults {
		for i := 0; i < n; i++ {
			ffs := faultfs.New(faultfs.FailOp(i, fc.f))
			run := runCheckpointScript(t, ffs, StoreOptions{WriteAttempts: 1, WriteBackoff: time.Nanosecond})
			if run.err == nil {
				// The op the schedule hit was a best-effort one (e.g. a
				// cleanup remove); the contract below must hold anyway.
				run.attempted = nil
			}

			s, err := NewStoreWith("chain", IntCodec{}, StoreOptions{FS: ffs})
			if err != nil {
				t.Fatalf("%s@%d: reopen: %v", fc.label, i, err)
			}
			b, lerr := s.Load()
			if len(run.states) == 0 {
				// Nothing was ever acked: the chain is either absent —
				// which must present as "no chain", not as corruption of
				// something never written — or holds the attempted state
				// (the first write published before its error, e.g. on
				// the directory sync after the rename).
				if errors.Is(lerr, ErrNoChain) {
					continue
				}
				if lerr != nil {
					t.Fatalf("%s@%d: Load of never-acked chain = %v, want ErrNoChain or the attempted state", fc.label, i, lerr)
				}
				if run.attempted == nil || !stateEquals(b, run.attempted) {
					t.Fatalf("%s@%d: never-acked chain loaded a state that was never attempted", fc.label, i)
				}
				continue
			}
			if lerr != nil {
				t.Fatalf("%s@%d: Load = %v (chain must stay loadable at every failure point)", fc.label, i, lerr)
			}
			last := run.states[len(run.states)-1]
			// The failed step may have published before erroring (rename
			// landed, directory sync failed): both its state and the last
			// acked one are legal, anything else is not.
			if !stateEquals(b, last) && (run.attempted == nil || !stateEquals(b, run.attempted)) {
				t.Fatalf("%s@%d: loaded state matches neither the last persisted nor the attempted step", fc.label, i)
			}

			// Orphan contract: reporting never errors, and cleaning the
			// orphans away must not change what loads.
			orphans, oerr := OrphansFS(ffs, "chain")
			if oerr != nil {
				t.Fatalf("%s@%d: Orphans: %v", fc.label, i, oerr)
			}
			for _, o := range orphans {
				if err := ffs.Remove(o); err != nil {
					t.Fatalf("%s@%d: removing orphan %s: %v", fc.label, i, o, err)
				}
			}
			b2, lerr2 := s.Load()
			if lerr2 != nil || !stateEquals(b2, map[int]int(mustState(b))) {
				t.Fatalf("%s@%d: load after orphan cleanup changed: %v", fc.label, i, lerr2)
			}
		}
	}
}

// mustState flattens a loaded backup into a plain map for re-comparison.
func mustState(b *Backup[int]) map[int]int {
	state := map[int]int{}
	b.Ascend(func(k, v int) bool {
		state[k] = v
		return true
	})
	return state
}

// TestCheckpointWriteRetry: with the default bounded retry, a single
// transient fault anywhere in one checkpoint write is absorbed — the
// write succeeds on a later attempt because every attempt rebuilds the
// whole temp file before publishing (which is exactly why retrying is
// fsyncgate-safe HERE and nowhere near the WAL).
func TestCheckpointWriteRetry(t *testing.T) {
	// Count one WriteFull's fallible ops.
	counter := faultfs.New(nil)
	tmC := core.New()
	mC := New[int](tmC)
	sC, err := NewStoreWith("chain", IntCodec{}, StoreOptions{FS: counter})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		if _, err := mC.Put(k, 20+k); err != nil {
			t.Fatal(err)
		}
	}
	pre := counter.Fallible()
	pinC, err := tmC.PinSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	bC, err := mC.BackupAt(pinC)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sC.WriteFull(bC); err != nil {
		t.Fatal(err)
	}
	pinC.Release()
	n := counter.Fallible()

	for i := pre; i < n; i++ {
		ffs := faultfs.New(faultfs.FailOp(i, faultfs.Fault{Err: faultfs.ErrIO}))
		tm := core.New()
		m := New[int](tm)
		s, err := NewStoreWith("chain", IntCodec{}, StoreOptions{FS: ffs, WriteAttempts: 3, WriteBackoff: time.Nanosecond})
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 4; k++ {
			if _, err := m.Put(k, 20+k); err != nil {
				t.Fatal(err)
			}
		}
		pin, err := tm.PinSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		b, err := m.BackupAt(pin)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.WriteFull(b); err != nil {
			t.Fatalf("fault@%d: WriteFull with retry = %v, want success", i, err)
		}
		pin.Release()
		got, err := s.Load()
		if err != nil {
			t.Fatalf("fault@%d: Load: %v", i, err)
		}
		if got.Len() != 4 {
			t.Fatalf("fault@%d: loaded %d bindings, want 4", i, got.Len())
		}
	}
}
