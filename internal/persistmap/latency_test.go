package persistmap

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultfs"
)

// countingInjector wraps an Injector and counts the faults it actually
// injects, so a latency soak can prove its schedule was non-vacuous.
type countingInjector struct {
	inner faultfs.Injector
	n     atomic.Int64
}

func (c *countingInjector) Fault(n int, op faultfs.OpKind, path string) *faultfs.Fault {
	f := c.inner.Fault(n, op, path)
	if f != nil {
		c.n.Add(1)
	}
	return f
}

// TestWALDurableUnderSeededLatency is the injected-latency soak: durable
// committers over a WAL whose writes and fsyncs stall on a seeded
// schedule must all succeed — slow, never wrong — and a replay of the
// resulting log must rebuild every acked binding. This is the
// correctness half of the group-commit backpressure story; the walsync
// package pins the batching behavior itself.
func TestWALDurableUnderSeededLatency(t *testing.T) {
	inj := &countingInjector{inner: faultfs.NewLatencyInjector(42, 150, time.Millisecond)}
	ffs := faultfs.New(inj)
	tm := core.New()
	m := New[int](tm)
	s, err := NewStoreWith[int]("soak", IntCodec{}, StoreOptions{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.OpenWAL(WALOptions{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	m.AttachWAL(w, true)

	const workers, per = 4, 30
	want := map[int]int{}
	for wk := 0; wk < workers; wk++ {
		for i := 0; i < per; i++ {
			want[wk*1000+i] = wk*1000 + 7*i
		}
	}
	errs := make(chan error, workers*per)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := m.Put(wk*1000+i, wk*1000+7*i); err != nil {
					errs <- err
				}
			}
		}(wk)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("durable put under latency: %v", err)
	}
	st := w.Stats()
	if st.Records != uint64(workers*per) {
		t.Fatalf("synced records = %d, want %d", st.Records, workers*per)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if inj.n.Load() == 0 {
		t.Fatal("latency schedule injected no stalls — vacuous soak")
	}

	// Replay the slow-written log into a fresh map: every acked binding,
	// nothing else, no torn tail.
	tm2 := core.New()
	m2 := New[int](tm2)
	s2, err := NewStoreWith[int]("soak", IntCodec{}, StoreOptions{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	info, err := s2.Replay(m2)
	if err != nil {
		t.Fatal(err)
	}
	if info.TornTail {
		t.Fatal("latency-only schedule produced a torn tail")
	}
	for k, v := range want {
		gv, ok, err := m2.Get(k)
		if err != nil || !ok || gv != v {
			t.Fatalf("replayed key %d = (%d,%v,%v), want (%d,true,nil)", k, gv, ok, err, v)
		}
	}
	if n, err := m2.Len(); err != nil || n != len(want) {
		t.Fatalf("replayed len = (%d,%v), want %d", n, err, len(want))
	}
}
